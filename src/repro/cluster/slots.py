"""Hash-slot routing: CRC16(key) mod 16384 slots, slots owned by shards.

This is Redis Cluster's data-distribution model.  Every key hashes to
exactly one of :data:`NUM_SLOTS` slots (honoring ``{hash tag}`` notation,
so callers can force related keys onto one shard), and a :class:`SlotMap`
records which shard owns each slot.  Ownership changes *only* through
explicit resharding calls -- adding a shard assigns it no slots until a
reshard moves some -- which is what lets a cluster grow without silently
rerouting live keys.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

from ..common.errors import ClusterError
from ..common.hashing import crc16_xmodem

NUM_SLOTS = 16384

KeyLike = Union[str, bytes]


def _key_bytes(key: KeyLike) -> bytes:
    return key.encode("utf-8") if isinstance(key, str) else bytes(key)


def hash_tag(key: KeyLike) -> bytes:
    """The byte span actually hashed: the first non-empty ``{...}`` group
    if present, else the whole key (Redis Cluster's hash-tag rule)."""
    raw = _key_bytes(key)
    start = raw.find(b"{")
    if start == -1:
        return raw
    end = raw.find(b"}", start + 1)
    if end == -1 or end == start + 1:
        return raw
    return raw[start + 1:end]


def slot_for_key(key: KeyLike) -> int:
    """Map a key to its hash slot in [0, NUM_SLOTS)."""
    return crc16_xmodem(hash_tag(key)) % NUM_SLOTS


class SlotMap:
    """Slot -> shard ownership table with explicit resharding.

    The default layout (:meth:`even`) gives shard ``j`` of ``n`` the
    contiguous range ``[j * NUM_SLOTS // n, (j + 1) * NUM_SLOTS // n)``,
    exactly how ``redis-cli --cluster create`` splits a fresh cluster.
    """

    def __init__(self, assignment: Sequence[int]) -> None:
        if len(assignment) != NUM_SLOTS:
            raise ClusterError(
                f"slot map must cover all {NUM_SLOTS} slots, "
                f"got {len(assignment)}")
        shards = set(assignment)
        if not shards or min(shards) < 0:
            raise ClusterError("slot map references negative shard ids")
        self._assignment: List[int] = list(assignment)
        self._num_shards = max(shards) + 1

    @classmethod
    def even(cls, num_shards: int) -> "SlotMap":
        """Contiguous even split across ``num_shards`` shards."""
        if num_shards <= 0:
            raise ClusterError("a cluster needs at least one shard")
        assignment = [0] * NUM_SLOTS
        for shard in range(num_shards):
            start = shard * NUM_SLOTS // num_shards
            end = (shard + 1) * NUM_SLOTS // num_shards
            for slot in range(start, end):
                assignment[slot] = shard
        return cls(assignment)

    # -- lookup ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards the map knows about (some may own no slots)."""
        return self._num_shards

    def shard_of_slot(self, slot: int) -> int:
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        return self._assignment[slot]

    def shard_for_key(self, key: KeyLike) -> int:
        return self._assignment[slot_for_key(key)]

    def slots_of_shard(self, shard: int) -> List[int]:
        return [slot for slot, owner in enumerate(self._assignment)
                if owner == shard]

    def slot_counts(self) -> Dict[int, int]:
        counts = {shard: 0 for shard in range(self._num_shards)}
        for owner in self._assignment:
            counts[owner] += 1
        return counts

    # -- topology changes (always explicit) --------------------------------

    def add_shard(self) -> int:
        """Register a new, empty shard; routing is unchanged until slots
        are explicitly moved to it.  Returns the new shard id."""
        self._num_shards += 1
        return self._num_shards - 1

    def assign(self, slots: Iterable[int], shard: int) -> int:
        """Explicit resharding: move ``slots`` to ``shard``.  Returns how
        many slots actually changed owner."""
        if not 0 <= shard < self._num_shards:
            raise ClusterError(f"unknown shard {shard}")
        moved = 0
        for slot in slots:
            if not 0 <= slot < NUM_SLOTS:
                raise ClusterError(f"slot {slot} out of range")
            if self._assignment[slot] != shard:
                self._assignment[slot] = shard
                moved += 1
        return moved

    def assign_range(self, start: int, end: int, shard: int) -> int:
        """Move the slot range [start, end) to ``shard``."""
        return self.assign(range(start, end), shard)
