"""Hash-slot routing: CRC16(key) mod 16384 slots, slots owned by shards.

This is Redis Cluster's data-distribution model.  Every key hashes to
exactly one of :data:`NUM_SLOTS` slots (honoring ``{hash tag}`` notation,
so callers can force related keys onto one shard), and a :class:`SlotMap`
records which shard owns each slot.  Ownership changes *only* through
explicit resharding calls -- adding a shard assigns it no slots until a
reshard moves some -- which is what lets a cluster grow without silently
rerouting live keys.

Cross-shard invariants documented here because every layer above relies
on them:

* **One slot, one owner.**  ``shard_of_slot`` is total: at any instant
  every slot has exactly one owning shard, even mid-migration (the source
  remains the owner until the atomic flip in :meth:`end_migration`).
* **Live migration is a two-sided state.**  While a slot moves, the owner
  is *MIGRATING* and the destination is *IMPORTING*
  (:class:`MigrationState`).  Servers use these states to emit ``ASK``
  (key absent on the migrating source) and ``MOVED`` (request reached the
  importing target without ``ASKING``, or a stale client after the flip).
* **CROSSSLOT rule.**  Multi-key commands must keep all keys in one slot
  (colocate with ``{hash tag}``); a slot is the unit of migration, so the
  rule guarantees a multi-key command never straddles a moving boundary.
* **At most one migration per slot**, and :meth:`assign` refuses to move
  a slot that is mid-migration -- routing-only resharding and data-moving
  resharding cannot race on the same slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..common.errors import ClusterError, MigrationError
from ..common.hashing import crc16_xmodem

NUM_SLOTS = 16384

KeyLike = Union[str, bytes]


def _key_bytes(key: KeyLike) -> bytes:
    return key.encode("utf-8") if isinstance(key, str) else bytes(key)


def hash_tag(key: KeyLike) -> bytes:
    """The byte span actually hashed: the first non-empty ``{...}`` group
    if present, else the whole key (Redis Cluster's hash-tag rule)."""
    raw = _key_bytes(key)
    start = raw.find(b"{")
    if start == -1:
        return raw
    end = raw.find(b"}", start + 1)
    if end == -1 or end == start + 1:
        return raw
    return raw[start + 1:end]


def slot_for_key(key: KeyLike) -> int:
    """Map a key to its hash slot in [0, NUM_SLOTS)."""
    return crc16_xmodem(hash_tag(key)) % NUM_SLOTS


@dataclass(frozen=True)
class MigrationState:
    """One slot mid-flight: ``source`` still owns it, ``target`` imports.

    Mirrors Redis Cluster's paired ``CLUSTER SETSLOT <slot> MIGRATING``
    (on the source) and ``IMPORTING`` (on the target) flags, kept in one
    record because this SlotMap is the cluster's shared topology view.
    """

    slot: int
    source: int
    target: int


class SlotMap:
    """Slot -> shard ownership table with explicit resharding.

    The default layout (:meth:`even`) gives shard ``j`` of ``n`` the
    contiguous range ``[j * NUM_SLOTS // n, (j + 1) * NUM_SLOTS // n)``,
    exactly how ``redis-cli --cluster create`` splits a fresh cluster.

    Beyond static ownership, the map tracks **live migrations**: a slot
    enters :meth:`begin_migration`, the migrator copies keys while servers
    answer with ASK/MOVED redirects, and :meth:`end_migration` flips the
    owner atomically (one assignment-table write).
    """

    def __init__(self, assignment: Sequence[int]) -> None:
        if len(assignment) != NUM_SLOTS:
            raise ClusterError(
                f"slot map must cover all {NUM_SLOTS} slots, "
                f"got {len(assignment)}")
        shards = set(assignment)
        if not shards or min(shards) < 0:
            raise ClusterError("slot map references negative shard ids")
        self._assignment: List[int] = list(assignment)
        self._num_shards = max(shards) + 1
        self._migrations: Dict[int, MigrationState] = {}

    @classmethod
    def even(cls, num_shards: int) -> "SlotMap":
        """Contiguous even split across ``num_shards`` shards."""
        if num_shards <= 0:
            raise ClusterError("a cluster needs at least one shard")
        assignment = [0] * NUM_SLOTS
        for shard in range(num_shards):
            start = shard * NUM_SLOTS // num_shards
            end = (shard + 1) * NUM_SLOTS // num_shards
            for slot in range(start, end):
                assignment[slot] = shard
        return cls(assignment)

    # -- lookup ------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of shards the map knows about (some may own no slots)."""
        return self._num_shards

    def shard_of_slot(self, slot: int) -> int:
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        return self._assignment[slot]

    def shard_for_key(self, key: KeyLike) -> int:
        return self._assignment[slot_for_key(key)]

    def slots_of_shard(self, shard: int) -> List[int]:
        return [slot for slot, owner in enumerate(self._assignment)
                if owner == shard]

    def slot_counts(self) -> Dict[int, int]:
        counts = {shard: 0 for shard in range(self._num_shards)}
        for owner in self._assignment:
            counts[owner] += 1
        return counts

    # -- migration state ---------------------------------------------------

    def migration_of(self, slot: int) -> Optional[MigrationState]:
        """The in-flight migration of ``slot``, if any."""
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        return self._migrations.get(slot)

    def is_stable(self, slot: int) -> bool:
        return self.migration_of(slot) is None

    def is_migrating(self, slot: int, shard: int) -> bool:
        """Is ``shard`` the source currently handing off ``slot``?"""
        state = self.migration_of(slot)
        return state is not None and state.source == shard

    def is_importing(self, slot: int, shard: int) -> bool:
        """Is ``shard`` the target currently importing ``slot``?"""
        state = self.migration_of(slot)
        return state is not None and state.target == shard

    def importing_slots_of(self, shard: int) -> List[int]:
        return sorted(slot for slot, state in self._migrations.items()
                      if state.target == shard)

    def migrating_slots_of(self, shard: int) -> List[int]:
        return sorted(slot for slot, state in self._migrations.items()
                      if state.source == shard)

    def begin_migration(self, slot: int, target: int) -> MigrationState:
        """Mark ``slot`` MIGRATING from its owner / IMPORTING on
        ``target``.  Routing is unchanged -- the source stays the owner --
        but slot-aware servers start answering ASK/MOVED for it."""
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        if not 0 <= target < self._num_shards:
            raise ClusterError(f"unknown shard {target}")
        if slot in self._migrations:
            raise MigrationError(
                f"slot {slot} is already migrating "
                f"({self._migrations[slot].source} -> "
                f"{self._migrations[slot].target})")
        source = self._assignment[slot]
        if source == target:
            raise MigrationError(
                f"slot {slot} already belongs to shard {target}")
        state = MigrationState(slot=slot, source=source, target=target)
        self._migrations[slot] = state
        return state

    def end_migration(self, slot: int) -> int:
        """Atomically flip ownership of ``slot`` to the importing target
        and clear the migration state.  Returns the new owner."""
        state = self._migrations.pop(slot, None)
        if state is None:
            raise MigrationError(f"slot {slot} is not migrating")
        self._assignment[slot] = state.target
        return state.target

    def abort_migration(self, slot: int) -> MigrationState:
        """Cancel an in-flight migration; ownership never changed, so the
        source simply stops being MIGRATING.  Returns the cleared state."""
        state = self._migrations.pop(slot, None)
        if state is None:
            raise MigrationError(f"slot {slot} is not migrating")
        return state

    # -- topology changes (always explicit) --------------------------------

    def add_shard(self) -> int:
        """Register a new, empty shard; routing is unchanged until slots
        are explicitly moved to it.  Returns the new shard id."""
        self._num_shards += 1
        return self._num_shards - 1

    def assign(self, slots: Iterable[int], shard: int) -> int:
        """Explicit *routing-only* resharding: move ``slots`` to
        ``shard``.  Returns how many slots actually changed owner.  Slots
        with an in-flight data migration are refused -- use the migrator's
        finish/abort path instead."""
        if not 0 <= shard < self._num_shards:
            raise ClusterError(f"unknown shard {shard}")
        moved = 0
        for slot in slots:
            if not 0 <= slot < NUM_SLOTS:
                raise ClusterError(f"slot {slot} out of range")
            if slot in self._migrations:
                raise MigrationError(
                    f"slot {slot} has an in-flight migration; finish or "
                    "abort it before reassigning")
            if self._assignment[slot] != shard:
                self._assignment[slot] = shard
                moved += 1
        return moved

    def assign_range(self, start: int, end: int, shard: int) -> int:
        """Move the slot range [start, end) to ``shard``."""
        return self.assign(range(start, end), shard)


class SlotPlacement:
    """Dynamic slot -> worker table for one shard's worker pool.

    The worker pool's default partition is static -- slot ``s`` belongs
    to worker ``s % K`` -- which leaves one core pinned whenever a
    zipfian-hot slot lands on it.  A ``SlotPlacement`` overlays that
    default with two kinds of exceptions, both maintained by the pool's
    rebalancer:

    * **overrides** -- a hot slot explicitly re-homed to a different
      worker (``assign``); per-key operations still serialize on exactly
      one core, it is just no longer ``s % K``;
    * **splits** -- the degenerate single-hot-slot case: the slot's
      *read-only* commands may fan across a set of workers
      (``split``), while its writes stay pinned to the slot's home
      worker, preserving the single-writer invariant.

    A worker-count change invalidates everything: the default mapping
    itself re-partitions, so :meth:`resize` drops all overrides and
    splits and bumps :attr:`version` (route caches key off it).
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("a placement needs at least one worker")
        self.num_workers = num_workers
        self.version = 0
        self._overrides: Dict[int, int] = {}
        self._splits: Dict[int, tuple] = {}

    def worker_of_slot(self, slot: int) -> int:
        """The slot's home worker: override if present, else
        ``slot % num_workers``.  Writes always land here."""
        home = self._overrides.get(slot)
        return home if home is not None else slot % self.num_workers

    def split_of_slot(self, slot: int) -> Optional[tuple]:
        """The worker set a split slot's reads may fan over (``None``
        when the slot is not split)."""
        return self._splits.get(slot)

    @property
    def overrides(self) -> Dict[int, int]:
        return dict(self._overrides)

    @property
    def splits(self) -> Dict[int, tuple]:
        return dict(self._splits)

    def assign(self, slot: int, worker: int) -> None:
        """Re-home ``slot`` to ``worker`` (reverting to the default
        mapping when they already agree)."""
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        if not 0 <= worker < self.num_workers:
            raise ClusterError(f"unknown worker {worker}")
        if worker == slot % self.num_workers:
            self._overrides.pop(slot, None)
        else:
            self._overrides[slot] = worker
        self.version += 1

    def split(self, slot: int, workers: Sequence[int]) -> None:
        """Fan ``slot``'s read-only commands over ``workers`` (its home
        worker is always included, so a read can still ride the core
        that serializes the slot's writes)."""
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        fan = sorted(set(workers) | {self.worker_of_slot(slot)})
        if any(not 0 <= worker < self.num_workers for worker in fan):
            raise ClusterError(f"split workers {list(workers)} out of range")
        if len(fan) < 2:
            raise ClusterError("a split needs at least two workers")
        self._splits[slot] = tuple(fan)
        self.version += 1

    def unsplit(self, slot: int) -> None:
        if self._splits.pop(slot, None) is not None:
            self.version += 1

    def clear(self) -> None:
        """Drop every override and split (back to pure ``slot % K``)."""
        if self._overrides or self._splits:
            self._overrides.clear()
            self._splits.clear()
            self.version += 1

    def resize(self, num_workers: int) -> None:
        """The pool's worker count changed: the default mapping
        re-partitions, so every override and split is stale.  Drops
        them all and bumps :attr:`version`."""
        if num_workers < 1:
            raise ValueError("a placement needs at least one worker")
        self.num_workers = num_workers
        self._overrides.clear()
        self._splits.clear()
        self.version += 1
