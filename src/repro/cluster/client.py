"""Cluster client: slot-routed commands and pipelined batches.

A :class:`ClusterClient` fronts N single-node stores, each behind its own
simulated channel and RESP server, and routes every command to the shard
owning its key's hash slot.  Two things make it more than a router:

* **Pipelining** -- :meth:`ClusterClient.pipeline` batches many requests
  into *one* transmit per shard per round trip (and the server's replies
  are coalesced the same way), so the simulated clock charges the channel
  latency once per batch instead of once per request -- exactly the
  economics that make ``redis-benchmark -P`` and real pipelined clients
  fast.
* **Shard parallelism** -- with per-shard clocks (the default built by
  :func:`build_cluster`), a batch's elapsed time is the *maximum* over the
  shards it touched, not the sum: shards are independent machines working
  concurrently, as in a real shared-nothing cluster.  After every round
  trip all clocks are re-synchronized to the cluster-wide time, so
  per-shard background work (fsync, cron) stays coherent.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..common.clock import Clock, SimClock
from ..common.errors import ClusterError, CrossSlotError
from ..common.resp import RespDecoder, RespError, encode_command
from ..kvstore.commands import normalize_args
from ..kvstore.server import RawTransport, StoreServer
from ..kvstore.store import KeyValueStore, StoreConfig
from ..net.channel import Channel, LAN_LATENCY, RAW_BANDWIDTH_BPS
from .slots import SlotMap, slot_for_key

# Commands with no key argument route to shard 0 unless the caller pins one.
KEYLESS_COMMANDS = frozenset((
    b"PING", b"INFO", b"CONFIG", b"SELECT", b"SLOWLOG",
    b"BGREWRITEAOF", b"BGSAVE", b"SAVE", b"TIME",
))

# Keyspace-wide commands fan out to every shard, replies merged (flushes
# must reach all shards, DBSIZE sums, KEYS concatenates).  Only valid via
# ``call``; a pipelined broadcast would need one reply slot per shard.
BROADCAST_COMMANDS = frozenset((
    b"FLUSHALL", b"FLUSHDB", b"DBSIZE", b"KEYS",
))

# Commands whose cluster-wide semantics cannot be faked by routing their
# first argument (SCAN cursors and RANDOMKEY are per-shard notions).
UNROUTABLE_COMMANDS = frozenset((b"SCAN", b"RANDOMKEY"))

# Multi-key commands and where their keys sit: (first, step); keys run to
# the end of argv.  All keys must share a slot (Redis' CROSSSLOT rule).
MULTI_KEY_COMMANDS: Dict[bytes, Tuple[int, int]] = {
    b"DEL": (1, 1),
    b"UNLINK": (1, 1),
    b"EXISTS": (1, 1),
    b"MGET": (1, 1),
    b"MSET": (1, 2),
    b"RENAME": (1, 1),
}


class BufferedTransport:
    """Coalesces sends into one channel transmit per :meth:`flush`.

    The server writes one reply per request; wrapping its transport in
    this buffer turns a pipelined batch's replies into a single message,
    the same coalescing TCP gives a real pipelined connection.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._buffer: List[bytes] = []

    def send(self, data: bytes) -> None:
        self._buffer.append(data)

    def flush(self) -> None:
        if self._buffer:
            self._inner.send(b"".join(self._buffer))
            self._buffer.clear()

    def recv_available(self) -> bytes:
        return self._inner.recv_available()


class ClusterNode:
    """One shard: a store behind its own channel and RESP server."""

    def __init__(self, index: int, store: KeyValueStore,
                 channel: Channel) -> None:
        self.index = index
        self.store = store
        self.clock = store.clock
        self.channel = channel
        client_end, server_end = channel.endpoints()
        self.server = StoreServer(store)
        self.server_out = BufferedTransport(RawTransport(server_end))
        self.server.accept(self.server_out)
        self._client_transport = RawTransport(client_end)
        self._decoder = RespDecoder()

    def execute_batch(self, batch: Sequence[List[bytes]]) -> List[Any]:
        """One round trip: all requests in one transmit, all replies in
        one transmit, replies returned in request order."""
        payload = b"".join(encode_command(*argv) for argv in batch)
        self._client_transport.send(payload)
        self.server.pump()
        self.server_out.flush()
        self._decoder.feed(self._client_transport.recv_available())
        replies = []
        for _ in batch:
            found, value = self._decoder.next_value()
            if not found:
                raise RespError("ERR no reply received")
            replies.append(value)
        return replies


class Pipeline:
    """Queued requests executed in one round trip per shard."""

    def __init__(self, client: "ClusterClient") -> None:
        self._client = client
        self._requests: List[Tuple[int, List[bytes]]] = []

    def __len__(self) -> int:
        return len(self._requests)

    def call(self, *args: Any, shard: Optional[int] = None) -> "Pipeline":
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        target = shard if shard is not None \
            else self._client.route(argv)
        self._requests.append((target, argv))
        return self

    def execute(self, raise_errors: bool = True) -> List[Any]:
        replies = self._client.execute_routed(self._requests)
        self._requests = []
        if raise_errors:
            for reply in replies:
                if isinstance(reply, RespError):
                    raise reply
        return replies


class ClusterClient:
    """Routes commands across shards; one simulated client's view."""

    def __init__(self, nodes: Sequence[ClusterNode],
                 slot_map: Optional[SlotMap] = None,
                 clock: Optional[Clock] = None) -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one shard")
        self.nodes = list(nodes)
        self.slots = slot_map if slot_map is not None \
            else SlotMap.even(len(self.nodes))
        if self.slots.num_shards > len(self.nodes):
            raise ClusterError(
                f"slot map references shard "
                f"{self.slots.num_shards - 1} but only "
                f"{len(self.nodes)} nodes exist")
        self.clock = clock if clock is not None else SimClock()

    # -- routing -----------------------------------------------------------

    def shard_for(self, key) -> int:
        return self.slots.shard_for_key(key)

    def route(self, argv: List[bytes]) -> int:
        """The shard an argv executes on (CROSSSLOT-checked)."""
        name = argv[0].upper()
        decoded = name.decode("ascii", "replace")
        if name in UNROUTABLE_COMMANDS:
            raise ClusterError(
                f"{decoded} has no cluster-wide meaning; pin a shard "
                "with call(..., shard=)")
        if name in BROADCAST_COMMANDS:
            raise ClusterError(
                f"{decoded} fans out to every shard; issue it via "
                "call(), not a pipeline, or pin a shard")
        if name in KEYLESS_COMMANDS or len(argv) < 2:
            return 0
        positions = MULTI_KEY_COMMANDS.get(name)
        if positions is None:
            return self.slots.shard_for_key(argv[1])
        first, step = positions
        slots = {slot_for_key(key) for key in argv[first::step]}
        if len(slots) > 1:
            raise CrossSlotError(
                "CROSSSLOT Keys in request don't hash to the same slot")
        return self.slots.shard_of_slot(slots.pop())

    # -- execution ---------------------------------------------------------

    def call(self, *args: Any, raise_errors: bool = True,
             shard: Optional[int] = None) -> Any:
        """One command, one full round trip to its shard (or, for
        keyspace-wide commands, one concurrent round trip to every
        shard with the replies merged)."""
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        if shard is None and argv[0].upper() in BROADCAST_COMMANDS:
            return self._broadcast(argv, raise_errors)
        target = shard if shard is not None else self.route(argv)
        [reply] = self.execute_routed([(target, argv)])
        if raise_errors and isinstance(reply, RespError):
            raise reply
        return reply

    def _broadcast(self, argv: List[bytes], raise_errors: bool) -> Any:
        replies = self.execute_routed(
            [(shard, argv) for shard in range(len(self.nodes))])
        for reply in replies:
            if isinstance(reply, RespError):
                if raise_errors:
                    raise reply
                return reply
        name = argv[0].upper()
        if name == b"DBSIZE":
            return sum(replies)
        if name == b"KEYS":
            return [key for reply in replies for key in reply]
        return replies[0]  # FLUSHALL / FLUSHDB: every shard said OK

    def pipeline(self) -> Pipeline:
        return Pipeline(self)

    def execute_routed(self, requests: Sequence[Tuple[int, List[bytes]]]
                       ) -> List[Any]:
        """Execute pre-routed (shard, argv) requests; replies come back in
        request order.  Shards touched by the batch run concurrently: the
        batch costs the slowest shard's time, not the shards' sum."""
        per_shard: Dict[int, List[Tuple[int, List[bytes]]]] = {}
        for position, (shard, argv) in enumerate(requests):
            if not 0 <= shard < len(self.nodes):
                raise ClusterError(f"unknown shard {shard}")
            per_shard.setdefault(shard, []).append((position, argv))
        start = self.clock.now()
        finish = start
        replies: List[Any] = [None] * len(requests)
        for shard, batch in per_shard.items():
            node = self.nodes[shard]
            node.clock.sleep_until(start)
            node.store.tick()
            for position, reply in zip(
                    (p for p, _ in batch),
                    node.execute_batch([argv for _, argv in batch])):
                replies[position] = reply
            finish = max(finish, node.clock.now())
        self.clock.sleep_until(finish)
        return replies

    def sync(self) -> float:
        """Bring every shard clock up to cluster time (idle shards pass
        simulated time too); returns the synchronized time."""
        now = max([self.clock.now()]
                  + [node.clock.now() for node in self.nodes])
        self.clock.sleep_until(now)
        for node in self.nodes:
            node.clock.sleep_until(now)
            node.store.tick()
        return now

    # -- introspection -----------------------------------------------------

    def keyspace_sizes(self) -> List[int]:
        return [len(node.store.databases[0]) for node in self.nodes]


StoreFactory = Callable[[int, Clock], KeyValueStore]


def build_cluster(num_shards: int,
                  store_factory: Optional[StoreFactory] = None,
                  clock: Optional[Clock] = None,
                  parallel: bool = True,
                  bandwidth_bps: float = RAW_BANDWIDTH_BPS,
                  latency: float = LAN_LATENCY,
                  slot_map: Optional[SlotMap] = None) -> ClusterClient:
    """Wire up a ready-to-use cluster.

    ``parallel=True`` (the default) gives each shard its own clock so
    batches cost max-over-shards time; ``parallel=False`` shares one clock
    across every shard -- fully serialized, useful for tests that want a
    single timeline.
    """
    master = clock if clock is not None else SimClock()
    if store_factory is None:
        def store_factory(index: int, node_clock: Clock) -> KeyValueStore:
            return KeyValueStore(StoreConfig(), clock=node_clock)
    nodes = []
    for index in range(num_shards):
        node_clock: Clock = SimClock(master.now()) if parallel else master
        channel = Channel(clock=node_clock, bandwidth_bps=bandwidth_bps,
                          latency=latency)
        store = store_factory(index, node_clock)
        if store.clock is not node_clock:
            raise ClusterError(
                "store_factory must build the store on the clock it is "
                "given (shard time and channel time must agree)")
        nodes.append(ClusterNode(index, store, channel))
    return ClusterClient(nodes, slot_map=slot_map, clock=master)
