"""Cluster client: slot-routed commands, pipelining, MOVED/ASK redirects.

A :class:`ClusterClient` fronts N single-node stores, each behind its own
simulated channel and RESP server, and routes every command to the shard
owning its key's hash slot.  Three things make it more than a router:

* **Pipelining** -- :meth:`ClusterClient.pipeline` batches many requests
  into *one* transmit per shard per round trip (and the server's replies
  are coalesced the same way), so the simulated clock charges the channel
  latency once per batch instead of once per request -- exactly the
  economics that make ``redis-benchmark -P`` and real pipelined clients
  fast.
* **Shard parallelism** -- with per-shard clocks (the default built by
  :func:`build_cluster`), a batch's elapsed time is the *maximum* over the
  shards it touched, not the sum: shards are independent machines working
  concurrently, as in a real shared-nothing cluster.  After every round
  trip all clocks are re-synchronized to the cluster-wide time, so
  per-shard background work (fsync, cron) stays coherent.
* **Topology discovery** -- the client routes from its *own cached* view
  of the slot map, while each shard's :class:`ClusterStoreServer` checks
  requests against the authoritative :class:`~repro.cluster.slots.SlotMap`
  and answers ``MOVED`` (ownership changed durably: update the cache and
  retry) or ``ASK`` (slot mid-migration: retry this one request at the
  importing shard behind an ``ASKING`` prefix).  Redirect-following is
  transparent to callers of :meth:`call` and pipelined batches alike, and
  capped (:class:`~repro.common.errors.RedirectLoopError`) so a confused
  topology cannot loop forever.

Cross-shard invariants enforced here:

* multi-key commands must keep every key in one hash slot (``CROSSSLOT``,
  checked client-side at routing *and* server-side against stale clients);
* during a slot migration the source serves keys it still holds and ASKs
  for keys it does not; the importing target serves only ``ASKING``
  requests until the slot flips;
* keyspace-wide broadcasts (``DBSIZE``/``KEYS``) exclude *importing*
  slots on the target so a key mid-copy is never double-counted.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..common.clock import Clock, SimClock
from ..common.errors import (
    AskError,
    ClusterError,
    CrossSlotError,
    MovedError,
    RedirectError,
    RedirectLoopError,
    StoreError,
)
from ..common.resp import RespDecoder, RespError, encode, encode_command
from ..kvstore.commands import normalize_args
from ..kvstore.server import (
    BufferedTransport,
    EventConnection,
    EventLoopMixin,
    RawTransport,
    ServerConnection,
    StoreServer,
    resp_error_from_store_error,
)
from ..engine.base import StorageEngine
from ..kvstore.store import KeyValueStore, StoreConfig
from ..net.channel import Channel, LAN_LATENCY, RAW_BANDWIDTH_BPS
from .slots import NUM_SLOTS, SlotMap, slot_for_key

# Commands with no key argument route to shard 0 unless the caller pins one.
KEYLESS_COMMANDS = frozenset((
    b"PING", b"INFO", b"CONFIG", b"SELECT", b"SLOWLOG",
    b"BGREWRITEAOF", b"BGSAVE", b"SAVE", b"TIME", b"TENANT",
))

# Keyspace-wide commands fan out to every shard, replies merged (flushes
# must reach all shards, DBSIZE sums, KEYS concatenates).  Only valid via
# ``call``; a pipelined broadcast would need one reply slot per shard.
BROADCAST_COMMANDS = frozenset((
    b"FLUSHALL", b"FLUSHDB", b"DBSIZE", b"KEYS",
))

# Commands whose cluster-wide semantics cannot be faked by routing their
# first argument (SCAN cursors and RANDOMKEY are per-shard notions).
UNROUTABLE_COMMANDS = frozenset((b"SCAN", b"RANDOMKEY"))

# Read-only single-slot commands eligible for read-from-replica routing
# (the READONLY-connection subset this model supports).  Anything else
# always goes to the primary.
REPLICA_READ_COMMANDS = frozenset((
    b"GET", b"MGET", b"EXISTS", b"STRLEN", b"TTL", b"PTTL", b"TYPE",
    b"HGET", b"HGETALL", b"HMGET", b"HLEN", b"LRANGE", b"LLEN",
    b"SMEMBERS", b"SCARD", b"SISMEMBER", b"ZSCORE", b"ZCARD",
))

# Sentinel: the replica path declined (no group, ineligible command);
# fall through to the primary round trip.
_REPLICA_MISS = object()

# Multi-key commands and where their keys sit: (first, step); keys run to
# the end of argv.  All keys must share a slot (Redis' CROSSSLOT rule).
MULTI_KEY_COMMANDS: Dict[bytes, Tuple[int, int]] = {
    b"DEL": (1, 1),
    b"UNLINK": (1, 1),
    b"EXISTS": (1, 1),
    b"MGET": (1, 1),
    b"MSET": (1, 2),
    b"RENAME": (1, 1),
}


def command_keys(argv: Sequence[bytes]) -> List[bytes]:
    """The key arguments of ``argv`` (empty for keyless / broadcast /
    per-shard commands).  Shared by client routing and the server-side
    slot check so both layers agree on what counts as a key."""
    name = argv[0].upper()
    if (name in KEYLESS_COMMANDS or name in BROADCAST_COMMANDS
            or name in UNROUTABLE_COMMANDS or len(argv) < 2):
        return []
    positions = MULTI_KEY_COMMANDS.get(name)
    if positions is None:
        return [argv[1]]
    first, step = positions
    return list(argv[first::step])


def _tenant_prefix(tenant: str) -> bytes:
    """The wire-level namespace prefix of ``tenant``'s keys."""
    from ..tenancy.registry import TENANT_SEP
    return (tenant + TENANT_SEP).encode("utf-8")


def parse_redirect(reply: Any) -> Optional[RedirectError]:
    """Recognize a MOVED/ASK wire error; None for anything else.

    Public: every redirect-following client (the pipelined
    :class:`ClusterClient` and the open-loop driver's simulated
    clients) must agree on what counts as a redirect.
    """
    if not isinstance(reply, RespError):
        return None
    parts = str(reply).split()
    if len(parts) != 3:
        return None
    try:
        slot, shard = int(parts[1]), int(parts[2])
    except ValueError:
        return None
    if parts[0] == "MOVED":
        return MovedError(slot, shard)
    if parts[0] == "ASK":
        return AskError(slot, shard)
    return None


# Pre-rename alias.
_parse_redirect = parse_redirect


class ClusterStoreServer(StoreServer):
    """A shard's RESP server, aware of the authoritative slot map.

    Before executing a keyed command, the server checks the request's hash
    slot against the shared :class:`SlotMap` (the role ``clusterState``
    plays inside a real Redis node):

    * slot owned here and stable -> execute;
    * slot MIGRATING from here -> execute if every key is still present,
      ``ASK <slot> <target>`` if none are (``TRYAGAIN`` for a multi-key
      request split across moved and unmoved keys);
    * slot IMPORTING here -> execute only when the client sent ``ASKING``
      first (one-shot, per connection), else ``MOVED`` back to the owner;
    * slot owned elsewhere -> ``MOVED <slot> <owner>``.

    Multi-key requests are also CROSSSLOT-checked server-side, so a stale
    or hand-rolled client cannot smuggle a cross-slot command to a shard.
    ``DBSIZE``/``KEYS`` replies exclude keys in importing slots: while a
    slot migrates, its keys are counted at the (still-owning) source
    only.  (A key *created* mid-migration via ASK lives only on the
    target and is invisible to broadcasts until the flip -- the same
    not-yet-owned semantics Redis Cluster gives importing slots.)

    As in real Redis Cluster, only database 0 exists: ``SELECT`` is
    refused, which is what lets slot migration treat "the shard's
    keyspace" and "database 0" as the same thing.
    """

    def __init__(self, store: StorageEngine, shard_index: int = 0,
                 slot_map: Optional[SlotMap] = None) -> None:
        super().__init__(store)
        self.shard_index = shard_index
        self.slot_map = slot_map
        # Multi-tenant admission (attach_tenant_gate): one shared
        # TenantGate fronts the whole cluster; None = tenancy off.
        self.tenant_gate = None

    def attach_tenant_gate(self, gate) -> None:
        """Install the cluster's shared
        :class:`~repro.tenancy.gate.TenantGate` and subscribe it to this
        shard's write/deletion streams (footprint accounting)."""
        self.tenant_gate = gate
        gate.watch_store(self.store)

    def accept(self, transport) -> ServerConnection:
        conn = super().accept(transport)
        conn.asking = False
        conn.tenant = None
        return conn

    def _serve(self, conn: ServerConnection, request: Any) -> None:
        if (not isinstance(request, list) or not request
                or not all(isinstance(a, bytes) for a in request)):
            super()._serve(conn, request)
            return
        name = request[0].upper()
        if name == b"ASKING":
            conn.asking = True
            conn.transport.send(b"+OK\r\n")
            return
        if name == b"TENANT":
            # Connection-level stamp, like ASKING but sticky: every
            # subsequent request on this connection executes inside the
            # named tenant's namespace and against its quotas.
            self._serve_tenant(conn, request)
            return
        asking, conn.asking = getattr(conn, "asking", False), False
        if self.slot_map is None:
            super()._serve(conn, request)
            return
        if name == b"SELECT":
            conn.transport.send(encode(RespError(
                "ERR SELECT is not allowed in cluster mode")))
            return
        redirect = self._slot_check(conn, request, asking)
        if redirect is not None:
            conn.transport.send(encode(redirect))
            return
        tenant = getattr(conn, "tenant", None)
        if tenant is not None and self.tenant_gate is not None:
            try:
                self.tenant_gate.admit(tenant, name, request,
                                       command_keys(request),
                                       self.store.clock.now())
            except StoreError as exc:
                # TENANTDENIED / QUOTAEXCEEDED reach the wire
                # unprefixed; the request never touches the engine, so
                # a throttled tenant costs only this check.
                conn.transport.send(
                    encode(resp_error_from_store_error(exc)))
                return
        if name in (b"DBSIZE", b"KEYS"):
            if tenant is not None and name == b"DBSIZE":
                reply: Any = self._tenant_dbsize(conn, tenant)
            else:
                reply = self._without_importing(
                    conn, name, self._execute(conn, request))
                if tenant is not None \
                        and not isinstance(reply, RespError):
                    prefix = _tenant_prefix(tenant)
                    reply = [key for key in reply
                             if key.startswith(prefix)]
            conn.transport.send(encode(reply))
            return
        if tenant is not None and name == b"SCAN":
            reply = self._execute(conn, request)
            if (isinstance(reply, list) and len(reply) == 2
                    and isinstance(reply[1], list)):
                prefix = _tenant_prefix(tenant)
                reply = [reply[0], [key for key in reply[1]
                                    if key.startswith(prefix)]]
            conn.transport.send(encode(reply))
            return
        super()._serve(conn, request)

    def _serve_tenant(self, conn: ServerConnection,
                      request: List[bytes]) -> None:
        if len(request) != 2:
            conn.transport.send(encode(RespError(
                "ERR wrong number of arguments for 'tenant' command")))
            return
        tenant = request[1].decode("utf-8", "replace")
        if self.tenant_gate is not None \
                and not self.tenant_gate.registry.known(tenant):
            conn.transport.send(encode(RespError(
                f"TENANTUNKNOWN no such tenant {tenant!r}")))
            return
        conn.tenant = tenant
        conn.transport.send(b"+OK\r\n")

    def _tenant_dbsize(self, conn: ServerConnection, tenant: str) -> int:
        """Tenant-scoped DBSIZE: live keys inside the tenant's prefix,
        excluding importing slots (same rule as `_without_importing`)."""
        importing = set(self.slot_map.importing_slots_of(self.shard_index))
        keys = self.store.live_keys_with_prefix(
            _tenant_prefix(tenant).decode("utf-8"),
            conn.session.db_index)
        if importing:
            keys = [key for key in keys
                    if slot_for_key(key) not in importing]
        return len(keys)

    def _holds(self, conn: ServerConnection, key: bytes) -> bool:
        return self.store.has_live_key(key, conn.session.db_index)

    def _slot_check(self, conn: ServerConnection, request: List[bytes],
                    asking: bool) -> Optional[RespError]:
        keys = command_keys(request)
        if not keys:
            return None
        slots = {slot_for_key(key) for key in keys}
        if len(slots) > 1:
            return RespError(
                "CROSSSLOT Keys in request don't hash to the same slot")
        slot = slots.pop()
        owner = self.slot_map.shard_of_slot(slot)
        state = self.slot_map.migration_of(slot)
        if owner == self.shard_index:
            if state is None:
                return None
            # MIGRATING source: serve what is still here, ASK for the rest.
            missing = [key for key in keys
                       if not self._holds(conn, key)]
            if not missing:
                return None
            if len(missing) < len(keys):
                return RespError(
                    "TRYAGAIN Multiple keys request during rehashing "
                    "of slot")
            return RespError(str(AskError(slot, state.target)))
        if state is not None and state.target == self.shard_index:
            if asking:
                return None
            return RespError(str(MovedError(slot, state.source)))
        return RespError(str(MovedError(slot, owner)))

    def _without_importing(self, conn: ServerConnection, name: bytes,
                           reply: Any) -> Any:
        """Drop keys in importing slots from keyspace-wide replies.

        Mid-migration both the source (authoritative) and the target
        (partial copy) hold a slot's keys; counting the importing side
        would double-count every key already copied.
        """
        importing = set(self.slot_map.importing_slots_of(self.shard_index))
        if not importing or isinstance(reply, RespError):
            return reply
        if name == b"KEYS":
            return [key for key in reply
                    if slot_for_key(key) not in importing]
        imported = sum(
            1 for key in self.store.live_keys(conn.session.db_index)
            if slot_for_key(key) in importing)
        return reply - imported


class EventClusterStoreServer(EventLoopMixin, ClusterStoreServer):
    """A shard's slot-aware RESP server running on the event loop.

    Slot checking, redirects, and reply filters come from
    :class:`ClusterStoreServer`; connection multiplexing, one-command-per-
    tick fairness, deferred reply flushing, and the cron-as-timer-events
    machinery come from :class:`~repro.kvstore.server.EventLoopMixin`.
    """

    def __init__(self, store: StorageEngine, scheduler: SimClock,
                 shard_index: int = 0,
                 slot_map: Optional[SlotMap] = None) -> None:
        super().__init__(store, shard_index=shard_index, slot_map=slot_map)
        self._init_event_loop(scheduler)


class ClusterNode:
    """One shard: a store behind its own channel and slot-aware server.

    Two wiring modes, chosen by ``scheduler``:

    * **synchronous** (``scheduler=None``): the classic closed-loop shard
      -- :meth:`execute_batch` pumps the server inline and the channel
      charges its clock directly;
    * **event-driven**: the shard runs an :class:`EventClusterStoreServer`
      on the shared ``scheduler`` timeline.  The store's own clock is the
      shard's *service-time meter*: commands still charge their CPU/AOF
      cost to it, but coordination happens through scheduled events, so
      shards overlap in simulated time because their events interleave in
      one heap -- not because anyone max()es per-shard clocks afterwards.
    """

    def __init__(self, index: int, store: StorageEngine,
                 channel: Channel,
                 slot_map: Optional[SlotMap] = None,
                 scheduler: Optional[SimClock] = None) -> None:
        self.index = index
        self.store = store
        self.clock = store.clock
        self.channel = channel
        self.scheduler = scheduler
        self.pool = None            # WorkerPool when multi-core (see workers)
        client_end, server_end = channel.endpoints()
        if scheduler is not None:
            if not channel.event_driven:
                raise ClusterError(
                    "an event-driven node needs an event-driven channel")
            self.server = EventClusterStoreServer(
                store, scheduler, shard_index=index, slot_map=slot_map)
            self.server.accept_endpoint(server_end)
            self.server.start_cron()
            self._client_endpoint = client_end
            self._client_transport = RawTransport(client_end)
            self._replies: List[Any] = []
            self._decoder = RespDecoder()
            client_end.set_receiver(self._on_reply_data)
            self.server_out = None
        else:
            self.server = ClusterStoreServer(store, shard_index=index,
                                             slot_map=slot_map)
            self.server_out = BufferedTransport(RawTransport(server_end))
            self.server.accept(self.server_out)
            self._client_transport = RawTransport(client_end)
            self._decoder = RespDecoder()

    # -- event-mode plumbing -----------------------------------------------

    def _on_reply_data(self) -> None:
        self._decoder.feed(self._client_endpoint.recv())
        self._replies.extend(self._decoder.drain())

    def send_batch(self, batch: Sequence[List[bytes]]) -> None:
        """Transmit a pipelined batch without waiting (event mode): the
        requests travel as one message and the shard works them off its
        own queue while other shards do the same."""
        payload = b"".join(encode_command(*argv) for argv in batch)
        self._client_transport.send(payload)

    def await_replies(self, count: int) -> List[Any]:
        """Drive the shared scheduler until ``count`` replies from this
        shard have arrived (other shards' events interleave freely).

        Stops on live events, not on ``run_next`` truthiness: recurring
        daemon work (the cron) reschedules itself forever, so "the heap
        is non-empty" can never mean "a reply is still coming".
        """
        while len(self._replies) < count:
            if self.scheduler.pending_live_events() == 0:
                raise RespError("ERR no reply received")
            self.scheduler.run_next()
        out = self._replies[:count]
        del self._replies[:count]
        return out

    def connect(self) -> EventConnection:
        """A new client connection to this shard (event mode only); the
        open-loop generator gives each simulated client its own."""
        if self.scheduler is None:
            raise ClusterError(
                "per-client connections need an event-driven node")
        return EventConnection(self.server,
                               bandwidth_bps=self.channel.bandwidth_bps,
                               latency=self.channel.latency)

    def execute_batch(self, batch: Sequence[List[bytes]]) -> List[Any]:
        """One round trip: all requests in one transmit, all replies in
        one transmit, replies returned in request order."""
        if self.scheduler is not None:
            self.send_batch(batch)
            return self.await_replies(len(batch))
        payload = b"".join(encode_command(*argv) for argv in batch)
        self._client_transport.send(payload)
        self.server.pump()
        self.server_out.flush()
        self._decoder.feed(self._client_transport.recv_available())
        replies = []
        for _ in batch:
            found, value = self._decoder.next_value()
            if not found:
                raise RespError("ERR no reply received")
            replies.append(value)
        return replies


class Pipeline:
    """Queued requests executed in one round trip per shard."""

    def __init__(self, client: "ClusterClient") -> None:
        self._client = client
        self._requests: List[Tuple[int, List[bytes]]] = []

    def __len__(self) -> int:
        return len(self._requests)

    def call(self, *args: Any, shard: Optional[int] = None) -> "Pipeline":
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        target = shard if shard is not None \
            else self._client.route(argv)
        self._requests.append((target, argv))
        return self

    def execute(self, raise_errors: bool = True) -> List[Any]:
        # Detach the queue first: if execution raises (redirect loop,
        # unknown shard), a reused pipeline must not re-submit these
        # side-effecting requests ahead of its next batch.
        requests, self._requests = self._requests, []
        replies = self._client.execute_routed(requests)
        if raise_errors:
            for reply in replies:
                if isinstance(reply, RespError):
                    raise reply
        return replies


class _Request:
    """One routed request's lifecycle across redirect retries."""

    __slots__ = ("shard", "argv", "asking", "redirects", "reply")

    def __init__(self, shard: int, argv: List[bytes]) -> None:
        self.shard = shard
        self.argv = argv
        self.asking = False
        self.redirects = 0
        self.reply: Any = None


class ClusterClient:
    """Routes commands across shards; one simulated client's view.

    The client never reads the authoritative slot map after construction:
    it routes from a private snapshot (``MOVED`` replies update it, as a
    real cluster client updates its slots table) so a live migration is
    *discovered* through redirects exactly as in Redis Cluster.
    """

    def __init__(self, nodes: Sequence[ClusterNode],
                 slot_map: Optional[SlotMap] = None,
                 clock: Optional[Clock] = None,
                 max_redirects: int = 5,
                 read_from_replicas: bool = False,
                 replica_seed: int = 0) -> None:
        if not nodes:
            raise ClusterError("a cluster needs at least one shard")
        self.nodes = list(nodes)
        self.slots = slot_map if slot_map is not None \
            else SlotMap.even(len(self.nodes))
        if self.slots.num_shards > len(self.nodes):
            raise ClusterError(
                f"slot map references shard "
                f"{self.slots.num_shards - 1} but only "
                f"{len(self.nodes)} nodes exist")
        self.clock = clock if clock is not None else SimClock()
        # getattr: tests drive the client with duck-typed fake nodes.
        self.event_driven = any(
            getattr(node, "scheduler", None) is not None
            for node in self.nodes)
        if self.event_driven:
            if not all(getattr(node, "scheduler", None) is not None
                       for node in self.nodes):
                raise ClusterError(
                    "cannot mix event-driven and synchronous nodes")
            schedulers = {id(node.scheduler) for node in self.nodes}
            if len(schedulers) > 1:
                raise ClusterError(
                    "event-driven nodes must share one scheduler")
            if self.nodes[0].scheduler is not self.clock:
                raise ClusterError(
                    "an event-driven cluster's clock must be the shared "
                    "scheduler")
        self.max_redirects = max_redirects
        self.moved_redirects = 0
        self.ask_redirects = 0
        # Per-shard replica groups (attach_replication); with
        # read_from_replicas on, eligible reads go to a random replica of
        # the owning shard, and stale_replica_reads counts the ones whose
        # replica had the read key in its in-flight backlog.
        self.replication = None
        self.read_from_replicas = read_from_replicas
        self._replica_rng = random.Random(replica_seed)
        self.replica_reads = 0
        self.stale_replica_reads = 0
        self.tenant: Optional[str] = None
        self._route: List[int] = []
        self.refresh_routing()

    def set_tenant(self, tenant: str) -> None:
        """Stamp this client's connection to every shard with ``tenant``.

        All subsequent requests execute inside that tenant's namespace
        and against its quotas; an unregistered tenant is refused with
        ``TENANTUNKNOWN`` (raised as a :class:`RespError`).
        """
        for shard in range(len(self.nodes)):
            self.call("TENANT", tenant, shard=shard)
        self.tenant = tenant

    # -- routing -----------------------------------------------------------

    def refresh_routing(self) -> None:
        """Resynchronize the routing cache from the authoritative slot
        map (the analogue of re-fetching ``CLUSTER SLOTS``).  Normally
        unnecessary: MOVED replies keep the cache converging lazily."""
        self._route = [self.slots.shard_of_slot(slot)
                       for slot in range(NUM_SLOTS)]

    def shard_for(self, key) -> int:
        """The shard this client would contact for ``key`` (its cached
        view, which may lag the authoritative map mid-migration)."""
        return self._route[slot_for_key(key)]

    def learn_route(self, slot: int, shard: int) -> None:
        """Record a durable ownership change (a ``MOVED`` reply) in the
        routing cache, as any client sharing this view would."""
        if not 0 <= slot < NUM_SLOTS:
            raise ClusterError(f"slot {slot} out of range")
        self._route[slot] = shard

    def route(self, argv: List[bytes]) -> int:
        """The shard an argv executes on (CROSSSLOT-checked)."""
        name = argv[0].upper()
        decoded = name.decode("ascii", "replace")
        if name in UNROUTABLE_COMMANDS:
            raise ClusterError(
                f"{decoded} has no cluster-wide meaning; pin a shard "
                "with call(..., shard=)")
        if name in BROADCAST_COMMANDS:
            raise ClusterError(
                f"{decoded} fans out to every shard; issue it via "
                "call(), not a pipeline, or pin a shard")
        if name in KEYLESS_COMMANDS or len(argv) < 2:
            return 0
        positions = MULTI_KEY_COMMANDS.get(name)
        if positions is None:
            return self._route[slot_for_key(argv[1])]
        first, step = positions
        slots = {slot_for_key(key) for key in argv[first::step]}
        if len(slots) > 1:
            raise CrossSlotError(
                "CROSSSLOT Keys in request don't hash to the same slot")
        return self._route[slots.pop()]

    # -- replication -------------------------------------------------------

    def attach_replication(self, replicas_per_shard: int = 1,
                           delay: float = 0.001,
                           delays: Optional[Sequence[float]] = None,
                           pump_interval: Optional[float] = None,
                           replica_factory=None):
        """Give every shard a replication group (see
        :mod:`repro.cluster.replication`).  Links live on each shard's
        own clock -- the shared scheduler in event mode -- so delivery
        times sit on the timeline the shard's writes happen on.  With
        ``pump_interval``, groups pump themselves from daemon timer
        events.  Slot migrations then hand replica sets off at the flip
        (``MigrationReceipt.replicas_synced``)."""
        from .replication import ClusterReplication

        if self.replication is not None:
            raise ClusterError("replication is already attached")
        self.replication = ClusterReplication.attach(
            self.clock,
            [(node.index, node.store,
              self.clock if self.event_driven else node.store.clock)
             for node in self.nodes],
            replicas_per_shard=replicas_per_shard, delay=delay,
            delays=delays, pump_interval=pump_interval,
            replica_factory=replica_factory)
        return self.replication

    def _replica_read(self, argv: List[bytes]) -> Any:
        """Serve an eligible read from a replica of the owning shard, or
        return the miss sentinel to fall through to the primary.

        The read is charged one round trip on the shard's channel shape
        (the replica is its own machine behind an equivalent link); the
        replica store itself serves from whatever state its delayed
        stream has applied -- which is exactly the stale-read exposure
        the knob exists to measure.

        Topology changes are honoured, not bypassed: a real READONLY
        replica knows the cluster state and answers ``MOVED`` when its
        primary no longer owns the slot, so a replica read through a
        stale routing cache learns the new owner (counted in
        ``moved_redirects``) and reads *that* shard's replica.  A slot
        mid-migration falls through to the primary path, which speaks
        ASK properly.
        """
        if self.replication is None \
                or argv[0].upper() not in REPLICA_READ_COMMANDS:
            return _REPLICA_MISS
        keys = command_keys(argv)
        if not keys:
            return _REPLICA_MISS
        shard = self.route(argv)
        slot = slot_for_key(keys[0])
        if self.slots.migration_of(slot) is not None:
            return _REPLICA_MISS
        owner = self.slots.shard_of_slot(slot)
        if owner != shard:
            # The replica's server would reply MOVED; that wasted hop
            # costs a round trip on the stale shard's channel before
            # the read retries at the new owner's replica.
            stale_channel = getattr(self.nodes[shard], "channel", None)
            if stale_channel is not None:
                nbytes = (len(encode_command(*argv))
                          + len(encode(RespError(
                              str(MovedError(slot, owner))))))
                self.clock.advance(
                    2 * stale_channel.latency
                    + nbytes / stale_channel.bandwidth_bps)
            self.moved_redirects += 1
            self.learn_route(slot, owner)
            shard = owner
        group = self.replication.group_of(shard)
        if group is None or not group.links:
            return _REPLICA_MISS
        from .replication import queue_touches

        # Replica delivery proceeds with cluster time whether or not the
        # primary path has touched this shard lately: bring the link
        # clock (per-shard in sync mode) up to now and apply whatever is
        # due, so only genuinely in-flight commands can count as stale.
        if group.clock is not self.clock:
            group.clock.sleep_until(self.clock.now())
        group.pump()
        link = group.links[self._replica_rng.randrange(len(group.links))]
        self.replica_reads += 1
        if queue_touches(link, keys):
            self.stale_replica_reads += 1
        try:
            reply = link.replica.execute(*argv)
        except RespError as exc:
            reply = exc
        except StoreError as exc:
            reply = resp_error_from_store_error(exc)
        channel = getattr(self.nodes[shard], "channel", None)
        if channel is not None:
            nbytes = len(encode_command(*argv)) + len(encode(reply))
            self.clock.advance(2 * channel.latency
                               + nbytes / channel.bandwidth_bps)
        return reply

    # -- execution ---------------------------------------------------------

    def call(self, *args: Any, raise_errors: bool = True,
             shard: Optional[int] = None,
             prefer_replica: Optional[bool] = None) -> Any:
        """One command, one full round trip to its shard (or, for
        keyspace-wide commands, one concurrent round trip to every
        shard with the replies merged).

        ``prefer_replica`` (default: the client's ``read_from_replicas``
        setting) routes an eligible single-slot read to a random replica
        of the owning shard instead of the primary; ineligible commands
        -- and clients with no replication attached -- fall through to
        the primary transparently.  Pipelines always hit primaries.
        """
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        if shard is None and argv[0].upper() in BROADCAST_COMMANDS:
            return self._broadcast(argv, raise_errors)
        use_replica = self.read_from_replicas if prefer_replica is None \
            else prefer_replica
        if use_replica and shard is None:
            reply = self._replica_read(argv)
            if reply is not _REPLICA_MISS:
                if raise_errors and isinstance(reply, RespError):
                    raise reply
                return reply
        target = shard if shard is not None else self.route(argv)
        [reply] = self.execute_routed([(target, argv)])
        if raise_errors and isinstance(reply, RespError):
            raise reply
        return reply

    def _broadcast(self, argv: List[bytes], raise_errors: bool) -> Any:
        replies = self.execute_routed(
            [(shard, argv) for shard in range(len(self.nodes))])
        for reply in replies:
            if isinstance(reply, RespError):
                if raise_errors:
                    raise reply
                return reply
        name = argv[0].upper()
        if name == b"DBSIZE":
            return sum(replies)
        if name == b"KEYS":
            return [key for reply in replies for key in reply]
        return replies[0]  # FLUSHALL / FLUSHDB: every shard said OK

    def pipeline(self) -> Pipeline:
        return Pipeline(self)

    def execute_routed(self, requests: Sequence[Tuple[int, List[bytes]]]
                       ) -> List[Any]:
        """Execute pre-routed (shard, argv) requests; replies come back in
        request order.  Shards touched by the batch run concurrently: the
        batch costs the slowest shard's time, not the shards' sum.

        MOVED/ASK replies are followed transparently: redirected requests
        are regrouped and retried in further round trips (each round trip
        again concurrent across the shards it touches), so a pipelined
        batch straddling a live migration completes with at most a few
        extra round trips.  Each request may be redirected at most
        ``max_redirects`` times before
        :class:`~repro.common.errors.RedirectLoopError` is raised.
        """
        entries = [_Request(shard, argv) for shard, argv in requests]
        pending = entries
        while pending:
            self._round_trip(pending)
            retry: List[_Request] = []
            for entry in pending:
                redirect = parse_redirect(entry.reply)
                if redirect is None:
                    continue
                if not 0 <= redirect.shard < len(self.nodes):
                    continue    # cannot follow; surface the raw error
                entry.redirects += 1
                if entry.redirects > self.max_redirects:
                    raise RedirectLoopError(
                        f"{entry.argv[0].decode('ascii', 'replace')} "
                        f"request redirected {entry.redirects} times "
                        "without converging on an owner")
                if isinstance(redirect, MovedError):
                    # Durable topology change: learn it, then retry.
                    self.moved_redirects += 1
                    self.learn_route(redirect.slot, redirect.shard)
                    entry.shard, entry.asking = redirect.shard, False
                else:
                    # ASK: one-shot redirect, no routing-table update.
                    self.ask_redirects += 1
                    entry.shard, entry.asking = redirect.shard, True
                retry.append(entry)
            pending = retry
        return [entry.reply for entry in entries]

    def _round_trip(self, entries: Sequence[_Request]) -> None:
        """One concurrent round trip: every entry's request reaches its
        shard (ASKING-prefixed where flagged) and its reply is stored.

        Event-driven clusters transmit every shard's batch *first* and
        then drive the shared scheduler until all replies are in: shard
        overlap is literally the interleaving of their events on one
        heap.  Synchronous clusters serve each shard inline on its own
        clock and take the max afterwards (the pre-event-core model).
        """
        per_shard: Dict[int, List[Tuple[Optional[_Request],
                                        List[bytes]]]] = {}
        for entry in entries:
            if not 0 <= entry.shard < len(self.nodes):
                raise ClusterError(f"unknown shard {entry.shard}")
            batch = per_shard.setdefault(entry.shard, [])
            if entry.asking:
                batch.append((None, [b"ASKING"]))
            batch.append((entry, entry.argv))
        if self.event_driven:
            for shard, batch in per_shard.items():
                self.nodes[shard].send_batch(
                    [argv for _, argv in batch])
            for shard, batch in per_shard.items():
                replies = self.nodes[shard].await_replies(len(batch))
                for (entry, _), reply in zip(batch, replies):
                    if entry is not None:
                        entry.reply = reply
            return
        start = self.clock.now()
        finish = start
        for shard, batch in per_shard.items():
            node = self.nodes[shard]
            node.clock.sleep_until(start)
            node.store.tick()
            for (entry, _), reply in zip(
                    batch,
                    node.execute_batch([argv for _, argv in batch])):
                if entry is not None:
                    entry.reply = reply
            finish = max(finish, node.clock.now())
        self.clock.sleep_until(finish)

    def sync(self) -> float:
        """Bring every shard clock up to cluster time (idle shards pass
        simulated time too); returns the synchronized time.  An
        event-driven cluster first drains in-flight (non-daemon) events
        so nothing is mid-air when the timeline is squared up."""
        if self.event_driven:
            self.clock.run_until_idle()
        now = max([self.clock.now()]
                  + [node.clock.now() for node in self.nodes])
        self.clock.sleep_until(now)
        for node in self.nodes:
            node.clock.sleep_until(now)
            node.store.tick()
        return now

    # -- introspection -----------------------------------------------------

    def keyspace_sizes(self) -> List[int]:
        return [node.store.key_count(0) for node in self.nodes]

    def routing_snapshot(self) -> List[int]:
        """A copy of this client's cached slot -> shard table.  The
        open-loop driver seeds each simulated client's *private* routing
        cache from this, so caches diverge and re-converge through
        MOVED redirects individually, as real cluster clients do."""
        return list(self._route)


StoreFactory = Callable[[int, Clock], StorageEngine]


def build_cluster(num_shards: int,
                  store_factory: Optional[StoreFactory] = None,
                  clock: Optional[Clock] = None,
                  parallel: bool = True,
                  bandwidth_bps: float = RAW_BANDWIDTH_BPS,
                  latency: float = LAN_LATENCY,
                  slot_map: Optional[SlotMap] = None,
                  event_driven: bool = False,
                  workers: Optional[int] = None,
                  dispatch_overhead: float = 0.0,
                  adaptive_batch: bool = False,
                  max_batch: int = 32,
                  placement=None,
                  tenant_gate=None) -> ClusterClient:
    """Wire up a ready-to-use cluster.

    ``event_driven=True`` puts every shard behind an event-loop server on
    **one** shared scheduler clock: channels deliver bytes as scheduled
    events, each shard executes one command per loop tick, and per-shard
    parallelism falls out of event interleaving.  Each shard's store
    still runs on its own clock, but that clock is now only the shard's
    service-time meter.

    ``workers=K`` (event mode only) gives every shard a
    :class:`~repro.cluster.workers.WorkerPool` of K simulated cores over
    a :class:`~repro.common.clock.ShardClock` meter; the pool hangs off
    ``node.pool``.  ``workers=None`` (the default) keeps the classic
    single-loop dispatch byte-for-byte.  ``dispatch_overhead`` /
    ``adaptive_batch`` / ``max_batch`` parameterize the pool's batching
    controller.  ``placement=True`` (or an explicit
    :class:`~repro.cluster.workers.PlacementPolicy`) turns on
    skew-aware slot placement -- hot-slot tracking, quiescence-point
    rebalancing and read splitting -- per pool; the default ``None``
    keeps the static ``slot % K`` partition byte-for-byte.

    Otherwise ``parallel=True`` (the default) gives each shard its own
    clock so batches cost max-over-shards time; ``parallel=False`` shares
    one clock across every shard -- fully serialized, useful for tests
    that want a single timeline.
    """
    master = clock if clock is not None else SimClock()
    if event_driven and not hasattr(master, "schedule_at"):
        raise ClusterError(
            "an event-driven cluster needs a scheduling clock (SimClock)")
    if workers is not None:
        if not event_driven:
            raise ClusterError("worker pools need event_driven=True")
        if workers < 1:
            raise ClusterError("a shard needs at least one worker")
    if slot_map is None:
        slot_map = SlotMap.even(num_shards)
    if store_factory is None:
        def store_factory(index: int, node_clock: Clock) -> StorageEngine:
            return KeyValueStore(StoreConfig(), clock=node_clock)
    nodes = []
    for index in range(num_shards):
        if event_driven:
            if workers is not None:
                from ..common.clock import ShardClock
                node_clock: Clock = ShardClock(master.now(), workers=workers)
            else:
                node_clock = SimClock(master.now())
            channel = Channel(clock=master, bandwidth_bps=bandwidth_bps,
                              latency=latency, event_driven=True)
        else:
            node_clock = SimClock(master.now()) if parallel else master
            channel = Channel(clock=node_clock,
                              bandwidth_bps=bandwidth_bps,
                              latency=latency)
        store = store_factory(index, node_clock)
        if store.clock is not node_clock:
            raise ClusterError(
                "store_factory must build the store on the clock it is "
                "given (shard time and channel time must agree)")
        node = ClusterNode(index, store, channel,
                           slot_map=slot_map,
                           scheduler=master if event_driven else None)
        if tenant_gate is not None:
            node.server.attach_tenant_gate(tenant_gate)
        if workers is not None:
            from .workers import (
                PlacementPolicy, WorkerPool, WorkerPoolConfig)
            policy = None
            if placement is not None and placement is not False:
                policy = placement if isinstance(placement,
                                                 PlacementPolicy) \
                    else PlacementPolicy()
            pool = WorkerPool(node_clock, WorkerPoolConfig(
                workers=workers,
                dispatch_overhead=dispatch_overhead,
                adaptive_batch=adaptive_batch,
                max_batch=max_batch,
                placement=policy))
            node.server.attach_workers(pool)
            node.pool = pool
        nodes.append(node)
    return ClusterClient(nodes, slot_map=slot_map, clock=master)
