"""repro: reproduction of "Analyzing the Impact of GDPR on Storage Systems"
(Shah, Banakar, Shastri, Wasserman, Chidambaram -- HotStorage 2019).

The package layers:

* :mod:`repro.kvstore` -- a Redis-like key-value store (the substrate the
  paper retrofits), with AOF persistence, snapshots, and Redis 4.0's
  probabilistic expiry algorithm ported faithfully;
* :mod:`repro.gdpr`    -- the paper's contribution: metadata, audit
  logging, access control, encryption, residency, subject rights, and the
  compliance-spectrum assessor;
* :mod:`repro.cluster` -- hash-slot sharding, pipelined cluster clients,
  and cross-shard GDPR rights fan-out (the scaling layer);
* :mod:`repro.ycsb`    -- the benchmark workloads the paper evaluates with;
* :mod:`repro.bench`   -- one driver per table/figure in the evaluation;
* :mod:`repro.device`, :mod:`repro.net`, :mod:`repro.crypto`,
  :mod:`repro.common` -- the simulated testbed.

Quickstart::

    from repro import GDPRStore, GDPRMetadata
    store = GDPRStore()
    store.put("user:alice:profile", b"...",
              GDPRMetadata(owner="alice",
                           purposes=frozenset({"billing"}), ttl=3600))
    record = store.get("user:alice:profile", purpose="billing")
"""

from .cluster import ClusterClient, ShardedGDPRStore, build_cluster
from .common.clock import SimClock, WallClock
from .gdpr import (
    CONTROLLER,
    AuditDurability,
    AuditLog,
    GDPRConfig,
    GDPRMetadata,
    GDPRStore,
    Principal,
    right_of_access,
    right_to_erasure,
    right_to_object,
    right_to_portability,
)
from .kvstore import KeyValueStore, StoreConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SimClock",
    "WallClock",
    "KeyValueStore",
    "StoreConfig",
    "ClusterClient",
    "ShardedGDPRStore",
    "build_cluster",
    "GDPRStore",
    "GDPRConfig",
    "GDPRMetadata",
    "Principal",
    "CONTROLLER",
    "AuditLog",
    "AuditDurability",
    "right_of_access",
    "right_to_erasure",
    "right_to_portability",
    "right_to_object",
]
