"""Administrative and server commands."""

from __future__ import annotations

from typing import List, Optional

from ..common.resp import RespError, SimpleString
from .commands import CommandContext, command, glob_match, parse_int

OK = SimpleString("OK")


@command("PING", arity=-1, touches_keyspace=False)
def cmd_ping(ctx: CommandContext, args: List[bytes]):
    if len(args) > 2:
        raise RespError("ERR wrong number of arguments for 'ping' command")
    if len(args) == 2:
        return args[1]
    return SimpleString("PONG")


@command("ECHO", arity=2, touches_keyspace=False)
def cmd_echo(ctx: CommandContext, args: List[bytes]) -> bytes:
    return args[1]


@command("SELECT", arity=2, touches_keyspace=False)
def cmd_select(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    index = parse_int(args[1], "ERR invalid DB index")
    if not 0 <= index < len(ctx.store.databases):
        raise RespError("ERR DB index is out of range")
    ctx.session.db_index = index
    return OK


@command("DBSIZE", arity=1)
def cmd_dbsize(ctx: CommandContext, args: List[bytes]) -> int:
    db = ctx.db
    return sum(1 for key in db.keys()
               if not ctx.store.key_is_expired(db, key, ctx.now))


@command("FLUSHDB", arity=1, write=True)
def cmd_flushdb(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    dropped = ctx.store.flush_database(ctx.db)
    if dropped:
        ctx.mark_dirty(dropped)
    else:
        ctx.mark_dirty()
    return OK


@command("FLUSHALL", arity=1, write=True)
def cmd_flushall(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    dropped = 0
    for db in ctx.store.databases:
        dropped += ctx.store.flush_database(db)
    ctx.mark_dirty(max(dropped, 1))
    return OK


@command("TIME", arity=1, touches_keyspace=False)
def cmd_time(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    seconds = int(ctx.now)
    micros = int((ctx.now - seconds) * 1e6)
    return [str(seconds).encode(), str(micros).encode()]


@command("INFO", arity=-1, touches_keyspace=False)
def cmd_info(ctx: CommandContext, args: List[bytes]) -> bytes:
    return ctx.store.info_text().encode("utf-8")


@command("CONFIG", arity=-2, touches_keyspace=False)
def cmd_config(ctx: CommandContext, args: List[bytes]):
    sub = args[1].upper()
    if sub == b"GET":
        if len(args) != 3:
            raise RespError("ERR wrong number of arguments for "
                            "'config get' command")
        pattern = args[2]
        out: List[bytes] = []
        for name, value in sorted(ctx.store.config_items().items()):
            if glob_match(pattern, name.encode()):
                out.append(name.encode())
                out.append(str(value).encode())
        return out
    if sub == b"SET":
        if len(args) != 4:
            raise RespError("ERR wrong number of arguments for "
                            "'config set' command")
        ctx.store.config_set(args[2].decode("utf-8"),
                             args[3].decode("utf-8"))
        return OK
    raise RespError(f"ERR unknown CONFIG subcommand "
                    f"{args[1].decode('utf-8', 'replace')!r}")


@command("BGREWRITEAOF", arity=1, touches_keyspace=False)
def cmd_bgrewriteaof(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    ctx.store.rewrite_aof()
    return SimpleString("Background append only file rewriting started")


@command("SAVE", arity=1, touches_keyspace=False)
def cmd_save(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    ctx.store.save_snapshot()
    return OK


@command("BGSAVE", arity=1, touches_keyspace=False)
def cmd_bgsave(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    ctx.store.save_snapshot()
    return SimpleString("Background saving started")


@command("SLOWLOG", arity=-2, touches_keyspace=False)
def cmd_slowlog(ctx: CommandContext, args: List[bytes]):
    sub = args[1].upper()
    if sub == b"GET":
        count = 10
        if len(args) == 3:
            count = parse_int(args[2])
        entries = ctx.store.slowlog.get(count)
        reply = []
        for entry in entries:
            reply.append([
                entry.entry_id,
                int(entry.timestamp),
                int(entry.duration * 1e6),
                [bytes(a) for a in entry.args],
            ])
        return reply
    if sub == b"RESET":
        ctx.store.slowlog.reset()
        return OK
    if sub == b"LEN":
        return len(ctx.store.slowlog)
    raise RespError("ERR unknown SLOWLOG subcommand")
