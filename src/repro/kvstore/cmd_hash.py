"""Hash commands.  YCSB stores each record as a hash of 10 fields."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common.resp import RespError, SimpleString
from .commands import CommandContext, command
from .datatypes import expect_hash

OK = SimpleString("OK")


def _hash_for_write(ctx: CommandContext, key: bytes) -> Dict[bytes, bytes]:
    value = ctx.lookup_write(key)
    if value is None:
        fresh: Dict[bytes, bytes] = {}
        ctx.set_value(key, fresh)
        return fresh
    return expect_hash(value)


def _hash_for_read(ctx: CommandContext,
                   key: bytes) -> Optional[Dict[bytes, bytes]]:
    value = ctx.lookup_read(key)
    if value is None:
        return None
    return expect_hash(value)


@command("HSET", arity=-4, write=True)
def cmd_hset(ctx: CommandContext, args: List[bytes]) -> int:
    pairs = args[2:]
    if len(pairs) % 2 != 0:
        raise RespError("ERR wrong number of arguments for 'hset' command")
    mapping = _hash_for_write(ctx, args[1])
    added = 0
    for i in range(0, len(pairs), 2):
        if pairs[i] not in mapping:
            added += 1
        mapping[pairs[i]] = pairs[i + 1]
    ctx.mark_dirty()
    return added


@command("HMSET", arity=-4, write=True)
def cmd_hmset(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    pairs = args[2:]
    if len(pairs) % 2 != 0:
        raise RespError("ERR wrong number of arguments for 'hmset' command")
    mapping = _hash_for_write(ctx, args[1])
    for i in range(0, len(pairs), 2):
        mapping[pairs[i]] = pairs[i + 1]
    ctx.mark_dirty()
    return OK


@command("HSETNX", arity=4, write=True)
def cmd_hsetnx(ctx: CommandContext, args: List[bytes]) -> int:
    mapping = _hash_for_write(ctx, args[1])
    if args[2] in mapping:
        return 0
    mapping[args[2]] = args[3]
    ctx.mark_dirty()
    return 1


@command("HGET", arity=3)
def cmd_hget(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    mapping = _hash_for_read(ctx, args[1])
    if mapping is None:
        return None
    return mapping.get(args[2])


@command("HMGET", arity=-3)
def cmd_hmget(ctx: CommandContext,
              args: List[bytes]) -> List[Optional[bytes]]:
    mapping = _hash_for_read(ctx, args[1]) or {}
    return [mapping.get(field) for field in args[2:]]


@command("HDEL", arity=-3, write=True)
def cmd_hdel(ctx: CommandContext, args: List[bytes]) -> int:
    mapping = _hash_for_read(ctx, args[1])
    if mapping is None:
        return 0
    removed = 0
    for field in args[2:]:
        if field in mapping:
            del mapping[field]
            removed += 1
    if removed:
        ctx.mark_dirty()
        if not mapping:
            ctx.delete(args[1])
    return removed


@command("HGETALL", arity=2)
def cmd_hgetall(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    mapping = _hash_for_read(ctx, args[1]) or {}
    flat: List[bytes] = []
    for field, value in mapping.items():
        flat.append(field)
        flat.append(value)
    return flat


@command("HLEN", arity=2)
def cmd_hlen(ctx: CommandContext, args: List[bytes]) -> int:
    mapping = _hash_for_read(ctx, args[1])
    return len(mapping) if mapping else 0


@command("HEXISTS", arity=3)
def cmd_hexists(ctx: CommandContext, args: List[bytes]) -> int:
    mapping = _hash_for_read(ctx, args[1])
    return 1 if mapping and args[2] in mapping else 0


@command("HKEYS", arity=2)
def cmd_hkeys(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    mapping = _hash_for_read(ctx, args[1]) or {}
    return list(mapping.keys())


@command("HVALS", arity=2)
def cmd_hvals(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    mapping = _hash_for_read(ctx, args[1]) or {}
    return list(mapping.values())
