"""Active-expiry strategies.

Three interchangeable strategies decide how expired keys are reclaimed by
the background cron; together they reproduce Figure 2 of the paper:

* :class:`LazyExpiryCycle` -- a faithful port of Redis 4.0's
  ``activeExpireCycle`` (expire.c): every cron tick, sample 20 random keys
  from the expires dict, delete the expired ones, and repeat within a time
  budget only while more than 25% of the sample was expired.  When the
  expired fraction is below 25% this deletes ~N_sample * fraction keys per
  tick, which is what makes erasure time grow linearly with database size
  in the paper's measurement (41 s at 1k keys -> ~3 h at 128k keys).
* :class:`FullScanExpiryCycle` -- the paper's modification: iterate the
  *entire* expires set each cycle and delete everything already expired.
  One cycle erases every expired key, hence "sub-second" erasure, at O(n)
  scan cost per tick.
* :class:`IndexedExpiryCycle` -- the paper's section 5.1 research
  direction: index keys by expiration time (a min-heap here, as a
  timeseries-style index), so a cycle pops exactly the expired keys in
  O(k log n) without scanning live ones.

Strategies charge CPU time to the store's clock per key visited, so the
simulated-time benchmarks account for their work honestly.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Tuple

from ..common.clock import Clock
from .keyspace import Database

# Constants from Redis 4.0 expire.c.
LOOKUPS_PER_LOOP = 20
SLOW_TIME_PERC = 25
# CPU costs charged per key, calibrated to the reference system (C Redis
# on the paper's Xeon): a random sample costs an RNG draw plus hash-table
# probes (~200 ns); a sequential scan step is a dict-walk entry (~60 ns);
# a deletion frees the entry and fixes bookkeeping (~300 ns).
SAMPLE_COST = 0.2e-6
SCAN_COST = 0.06e-6
DELETE_COST = 0.3e-6

ExpireCallback = Callable[[Database, bytes], None]


class ExpiryStats:
    """Counters a strategy accumulates across cycles (exposed via INFO)."""

    def __init__(self) -> None:
        self.cycles = 0
        self.sampled = 0
        self.expired = 0

    def as_dict(self) -> dict:
        return {"cycles": self.cycles, "sampled": self.sampled,
                "expired": self.expired}


class ExpiryStrategy:
    """Interface: reclaim expired keys from ``db`` as of ``now``."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = ExpiryStats()

    def run_cycle(self, db: Database, now: float, clock: Clock,
                  on_expire: ExpireCallback) -> int:
        """Run one cron cycle; returns the number of keys expired."""
        raise NotImplementedError

    # Hooks for strategies that maintain auxiliary structures.

    def note_expiry_set(self, key: bytes, expire_at: float) -> None:
        pass

    def note_expiry_cleared(self, key: bytes) -> None:
        pass

    def note_flush(self) -> None:
        pass


class LazyExpiryCycle(ExpiryStrategy):
    """Redis 4.0 ``activeExpireCycle`` (slow cycle), ported verbatim.

    ``hz`` controls both the cadence the store runs cycles at and the time
    budget of one cycle: SLOW_TIME_PERC% of one tick (25 ms at hz=10).
    """

    name = "lazy"

    def __init__(self, hz: int = 10, rng: Optional[random.Random] = None,
                 sample_cost: float = SAMPLE_COST,
                 delete_cost: float = DELETE_COST) -> None:
        super().__init__()
        self.hz = hz
        self._rng = rng if rng is not None else random.Random(0)
        self._sample_cost = sample_cost
        self._delete_cost = delete_cost

    def run_cycle(self, db: Database, now: float, clock: Clock,
                  on_expire: ExpireCallback) -> int:
        self.stats.cycles += 1
        timelimit = (SLOW_TIME_PERC / 100.0) / self.hz
        start = clock.now()
        total_expired = 0
        iteration = 0
        while True:
            num = db.volatile_count
            if num == 0:
                break
            if num > LOOKUPS_PER_LOOP:
                num = LOOKUPS_PER_LOOP
            expired = 0
            for _ in range(num):
                key = db.expires_sample.random_key(self._rng)
                if key is None:
                    break
                clock.advance(self._sample_cost)
                self.stats.sampled += 1
                expire_at = db.get_expiry(key)
                if expire_at is not None and expire_at <= now:
                    clock.advance(self._delete_cost)
                    on_expire(db, key)
                    expired += 1
            total_expired += expired
            db.expired_count += expired
            self.stats.expired += expired
            iteration += 1
            # Redis checks the budget every 16 iterations.
            if (iteration & 0xF) == 0 and clock.now() - start > timelimit:
                break
            if expired <= LOOKUPS_PER_LOOP // 4:
                break
        return total_expired


class FullScanExpiryCycle(ExpiryStrategy):
    """The paper's modification: walk every volatile key each cycle.

    Guarantees all expired keys are erased within one cron tick (the
    "sub-second latency for up to 1 million keys" claim), paying a full
    O(volatile_count) scan per cycle.
    """

    name = "fullscan"

    def __init__(self, scan_cost: float = SCAN_COST,
                 delete_cost: float = DELETE_COST) -> None:
        super().__init__()
        self._scan_cost = scan_cost
        self._delete_cost = delete_cost

    def run_cycle(self, db: Database, now: float, clock: Clock,
                  on_expire: ExpireCallback) -> int:
        self.stats.cycles += 1
        volatile = list(db.expires.items())
        clock.advance(self._scan_cost * max(len(volatile), 1))
        self.stats.sampled += len(volatile)
        expired = 0
        for key, expire_at in volatile:
            if expire_at <= now:
                clock.advance(self._delete_cost)
                on_expire(db, key)
                expired += 1
        db.expired_count += expired
        self.stats.expired += expired
        return expired


class IndexedExpiryCycle(ExpiryStrategy):
    """Expiration-time index (min-heap with lazy invalidation).

    ``note_expiry_set`` pushes (expire_at, key); stale heap entries (keys
    whose expiry changed or was cleared) are detected on pop by comparing
    against the authoritative expires dict.  A cycle costs O(k log n) for k
    expired keys -- the efficient-deletion shape section 5.1 asks for.
    """

    name = "indexed"

    def __init__(self, pop_cost: float = SAMPLE_COST,
                 delete_cost: float = DELETE_COST) -> None:
        super().__init__()
        self._heap: List[Tuple[float, bytes]] = []
        self._pop_cost = pop_cost
        self._delete_cost = delete_cost

    def note_expiry_set(self, key: bytes, expire_at: float) -> None:
        heapq.heappush(self._heap, (expire_at, key))

    def note_flush(self) -> None:
        self._heap.clear()

    def run_cycle(self, db: Database, now: float, clock: Clock,
                  on_expire: ExpireCallback) -> int:
        self.stats.cycles += 1
        expired = 0
        while self._heap and self._heap[0][0] <= now:
            expire_at, key = heapq.heappop(self._heap)
            clock.advance(self._pop_cost)
            self.stats.sampled += 1
            actual = db.get_expiry(key)
            if actual is None or actual != expire_at:
                continue  # stale entry: expiry was cleared or rewritten
            if actual <= now:
                clock.advance(self._delete_cost)
                on_expire(db, key)
                expired += 1
        db.expired_count += expired
        self.stats.expired += expired
        return expired

    @property
    def index_size(self) -> int:
        return len(self._heap)


STRATEGIES = {
    LazyExpiryCycle.name: LazyExpiryCycle,
    FullScanExpiryCycle.name: FullScanExpiryCycle,
    IndexedExpiryCycle.name: IndexedExpiryCycle,
}


def make_strategy(name: str, hz: int = 10,
                  rng: Optional[random.Random] = None) -> ExpiryStrategy:
    """Instantiate a strategy by config name."""
    if name == LazyExpiryCycle.name:
        return LazyExpiryCycle(hz=hz, rng=rng)
    if name == FullScanExpiryCycle.name:
        return FullScanExpiryCycle()
    if name == IndexedExpiryCycle.name:
        return IndexedExpiryCycle()
    raise ValueError(f"unknown expiry strategy {name!r}; "
                     f"choose from {sorted(STRATEGIES)}")
