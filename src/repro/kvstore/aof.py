"""Append-only-file persistence, including the paper's audit extension.

Redis' AOF records every command that *modifies* the dataset, encoded as
RESP command arrays, and replays them at startup.  The paper's key change
(section 4.1) is ``log_reads=True``: GDPR Art. 30 requires an audit trail
of *all* interactions with personal data, so reads are appended too --
which is what "turns every read operation into a read followed by a write".

Fsync policy (``appendfsync``) reproduces Redis' three settings:

* ``always``  -- flush + fsync after every command (the paper's strict
  real-time compliance: throughput falls to ~5% of baseline);
* ``everysec``-- flush after every command, fsync at most once per second
  (eventual compliance with a 1-second exposure window: ~30% of baseline,
  the 6x recovery the paper reports);
* ``no``      -- flush only; the OS decides when data reaches media.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from ..common.clock import Clock
from ..common.errors import PersistenceError
from ..common.resp import RespDecoder, encode_command
from ..device.append_log import AppendLog


class FsyncPolicy(enum.Enum):
    ALWAYS = "always"
    EVERYSEC = "everysec"
    NO = "no"

    @classmethod
    def parse(cls, text: str) -> "FsyncPolicy":
        try:
            return cls(text.lower())
        except ValueError:
            raise PersistenceError(
                f"unknown appendfsync policy {text!r}; "
                "choose always, everysec, or no")


class AofWriter:
    """Feeds executed commands into an :class:`AppendLog`.

    ``record_cost`` is the per-record CPU+syscall cost charged to the clock
    (see ``repro.bench.calibration`` for the derivation); the fsync cost is
    charged by the underlying log's latency model.
    """

    def __init__(self, log: AppendLog, clock: Clock,
                 policy: FsyncPolicy = FsyncPolicy.EVERYSEC,
                 log_reads: bool = False,
                 record_base_cost: float = 0.0,
                 record_per_byte_cost: float = 0.0) -> None:
        self.log = log
        self.clock = clock
        self.policy = policy
        self.log_reads = log_reads
        self.record_base_cost = record_base_cost
        self.record_per_byte_cost = record_per_byte_cost
        self._selected_db = 0
        self._last_fsync = clock.now()
        self.records_written = 0
        self.reads_logged = 0

    # -- the write path -------------------------------------------------------

    def feed_command(self, db_index: int, args: Sequence[bytes],
                     is_write: bool) -> None:
        """Append one executed command (called after successful execution)."""
        if not is_write and not self.log_reads:
            return
        if db_index != self._selected_db:
            select = encode_command(b"SELECT", str(db_index).encode())
            self.log.append(select)
            self._selected_db = db_index
        record = encode_command(*args)
        if self.record_base_cost or self.record_per_byte_cost:
            self.clock.advance(self.record_base_cost
                               + len(record) * self.record_per_byte_cost)
        self.log.append(record)
        self.records_written += 1
        if not is_write:
            self.reads_logged += 1

    def post_command(self) -> None:
        """Flush the application buffer; fsync if policy is ALWAYS.

        Mirrors Redis' flushAppendOnlyFile call at the end of each event
        loop iteration.
        """
        moved = self.log.flush()
        if self.policy is FsyncPolicy.ALWAYS and moved:
            self.log.fsync()
            self._last_fsync = self.clock.now()

    def tick(self, now: float) -> None:
        """Background fsync for the EVERYSEC policy."""
        if self.policy is FsyncPolicy.EVERYSEC and now - self._last_fsync >= 1.0:
            self.log.flush()
            self.log.fsync()
            self._last_fsync = now

    # -- exposure accounting ------------------------------------------------------

    def unsynced_bytes(self) -> int:
        """Bytes that a power loss right now would lose -- the 'one second
        worth of logs' exposure the paper describes for everysec."""
        return (self.log.total_length - self.log.durable_length)


def replay_commands(data: bytes,
                    tolerate_truncated_tail: bool = True) -> List[List[bytes]]:
    """Decode an AOF byte stream into a list of command argument vectors.

    A clean prefix followed by an incomplete final record is the normal
    crash shape; with ``tolerate_truncated_tail`` (Redis'
    ``aof-load-truncated yes``) the complete prefix is returned.  Bytes
    that are structurally invalid raise :class:`PersistenceError`.
    """
    decoder = RespDecoder()
    decoder.feed(data)
    commands: List[List[bytes]] = []
    try:
        while True:
            found, value = decoder.next_value()
            if not found:
                break
            if (not isinstance(value, list) or not value
                    or not all(isinstance(a, bytes) for a in value)):
                raise PersistenceError(
                    f"AOF record is not a command array: {value!r}")
            commands.append(value)
    except PersistenceError:
        raise
    except Exception as exc:
        raise PersistenceError(f"corrupt AOF stream: {exc}") from exc
    if decoder.buffered and not tolerate_truncated_tail:
        raise PersistenceError(
            f"AOF has {decoder.buffered} bytes of truncated tail")
    return commands


def contains_key(data: bytes, key: bytes) -> bool:
    """Does any record in the AOF stream mention ``key``?

    This is the section 4.3 check: after DEL, the key still *persists in
    the AOF* until a rewrite compacts it away -- the paper calls this out
    as antithetical to GDPR erasure.
    """
    for args in replay_commands(data):
        if key in args[1:]:
            return True
    return False


class AofRewriter:
    """Generate a compacted AOF from live store state (BGREWRITEAOF).

    The output recreates exactly the current dataset: one write command per
    key plus a PEXPIREAT for volatile keys.  Deleted data -- and any trace
    of erased subjects -- is gone after :meth:`rewrite_into`.
    """

    def __init__(self, store) -> None:
        self._store = store

    def dump_commands(self) -> List[bytes]:
        from .datatypes import type_name  # local import avoids a cycle
        chunks: List[bytes] = []
        for db in self._store.databases:
            if len(db) == 0:
                continue
            chunks.append(encode_command(b"SELECT",
                                         str(db.index).encode()))
            for key in db.keys():
                value = db.get_value(key)
                kind = type_name(value)
                if kind == "string":
                    chunks.append(encode_command(b"SET", key, value))
                elif kind == "hash":
                    flat: List[bytes] = []
                    for field, fval in value.items():
                        flat.extend((field, fval))
                    chunks.append(encode_command(b"HSET", key, *flat))
                elif kind == "list":
                    chunks.append(encode_command(b"RPUSH", key, *value))
                elif kind == "set":
                    chunks.append(encode_command(b"SADD", key,
                                                 *sorted(value)))
                elif kind == "zset":
                    flat = []
                    for member, score in value.items():
                        flat.extend((repr(score).encode("ascii"), member))
                    chunks.append(encode_command(b"ZADD", key, *flat))
                expire_at = db.get_expiry(key)
                if expire_at is not None:
                    millis = str(int(expire_at * 1000)).encode()
                    chunks.append(encode_command(b"PEXPIREAT", key, millis))
        return chunks

    def rewrite_into(self, log: AppendLog) -> int:
        """Replace ``log`` contents with the compacted stream; returns its
        size in bytes."""
        data = b"".join(self.dump_commands())
        log.replace(data)
        return len(data)
