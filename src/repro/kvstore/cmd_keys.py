"""Generic key-space commands: deletion, expiry, iteration.

These are the primitives section 4.3 of the paper analyzes: DEL/UNLINK for
immediate removal, EXPIRE/EXPIREAT for deferred removal, and the FLUSH
commands for bulk erasure.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.resp import RespError, SimpleString
from .commands import (
    CommandContext,
    command,
    glob_match,
    parse_int,
)
from .datatypes import type_name

OK = SimpleString("OK")


@command("DEL", arity=-2, write=True)
def cmd_del(ctx: CommandContext, args: List[bytes]) -> int:
    return sum(1 for key in args[1:] if ctx.delete(key))


@command("UNLINK", arity=-2, write=True)
def cmd_unlink(ctx: CommandContext, args: List[bytes]) -> int:
    # Single-threaded simulation: UNLINK's lazy reclaim is equivalent to
    # DEL for visibility; the distinction the paper cares about (when data
    # stops being *accessible*) is identical.
    return sum(1 for key in args[1:] if ctx.delete(key))


@command("EXISTS", arity=-2)
def cmd_exists(ctx: CommandContext, args: List[bytes]) -> int:
    return sum(1 for key in args[1:] if ctx.lookup_read(key) is not None)


@command("TYPE", arity=2)
def cmd_type(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    value = ctx.lookup_read(args[1])
    if value is None:
        return SimpleString("none")
    return SimpleString(type_name(value))


@command("KEYS", arity=2)
def cmd_keys(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    pattern = args[1]
    out = []
    for key in ctx.db.keys():
        if ctx.store.key_is_expired(ctx.db, key, ctx.now):
            continue
        if glob_match(pattern, key):
            out.append(key)
    return out


@command("SCAN", arity=-2)
def cmd_scan(ctx: CommandContext, args: List[bytes]) -> List:
    """Cursor iteration.  The cursor is a position in the key table; like
    Redis, a full iteration visits every key that exists throughout, and
    COUNT is a hint."""
    cursor = parse_int(args[1], "ERR invalid cursor")
    count = 10
    pattern: Optional[bytes] = None
    i = 2
    while i < len(args):
        option = args[i].upper()
        if option == b"COUNT" and i + 1 < len(args):
            count = parse_int(args[i + 1])
            if count <= 0:
                raise RespError("ERR syntax error")
            i += 2
        elif option == b"MATCH" and i + 1 < len(args):
            pattern = args[i + 1]
            i += 2
        else:
            raise RespError("ERR syntax error")
    table = ctx.db.all_keys_sample._items  # stable compact table
    if cursor < 0 or cursor > len(table):
        cursor = 0
    window = table[cursor:cursor + count]
    next_cursor = cursor + count
    if next_cursor >= len(table):
        next_cursor = 0
    keys = []
    for key in window:
        if ctx.store.key_is_expired(ctx.db, key, ctx.now):
            continue
        if pattern is None or glob_match(pattern, key):
            keys.append(key)
    return [str(next_cursor).encode("ascii"), keys]


@command("RANDOMKEY", arity=1)
def cmd_randomkey(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    # Retry a few times if we land on expired keys, like Redis does.
    for _ in range(100):
        key = ctx.db.random_key(ctx.store.rng)
        if key is None:
            return None
        if not ctx.store.key_is_expired(ctx.db, key, ctx.now):
            return key
        ctx.store.expire_if_needed(ctx.db, key, ctx.now)
    return None


@command("RENAME", arity=3, write=True)
def cmd_rename(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    src, dst = args[1], args[2]
    value = ctx.lookup_write(src)
    if value is None:
        raise RespError("ERR no such key")
    expire_at = ctx.db.get_expiry(src)
    ctx.delete(src)
    ctx.set_value(dst, value)
    ctx.store.clear_key_expiry(ctx.db, dst)
    if expire_at is not None:
        ctx.set_expiry(dst, expire_at)
    return OK


# -- expiry ---------------------------------------------------------------------


def _set_relative_expiry(ctx: CommandContext, key: bytes,
                         seconds: float) -> int:
    if ctx.lookup_write(key) is None:
        return 0
    deadline = ctx.now + seconds
    if deadline <= ctx.now:
        # Negative or zero TTL deletes immediately, as in Redis.
        ctx.delete(key)
        return 1
    ctx.set_expiry(key, deadline)
    return 1


@command("EXPIRE", arity=3, write=True)
def cmd_expire(ctx: CommandContext, args: List[bytes]) -> int:
    return _set_relative_expiry(ctx, args[1], parse_int(args[2]))


@command("PEXPIRE", arity=3, write=True)
def cmd_pexpire(ctx: CommandContext, args: List[bytes]) -> int:
    return _set_relative_expiry(ctx, args[1], parse_int(args[2]) / 1000.0)


def _set_absolute_expiry(ctx: CommandContext, key: bytes,
                         expire_at: float) -> int:
    if ctx.lookup_write(key) is None:
        return 0
    if expire_at <= ctx.now:
        ctx.delete(key)
        return 1
    ctx.set_expiry(key, expire_at)
    return 1


@command("EXPIREAT", arity=3, write=True)
def cmd_expireat(ctx: CommandContext, args: List[bytes]) -> int:
    return _set_absolute_expiry(ctx, args[1], float(parse_int(args[2])))


@command("PEXPIREAT", arity=3, write=True)
def cmd_pexpireat(ctx: CommandContext, args: List[bytes]) -> int:
    return _set_absolute_expiry(ctx, args[1], parse_int(args[2]) / 1000.0)


@command("TTL", arity=2)
def cmd_ttl(ctx: CommandContext, args: List[bytes]) -> int:
    remaining = _remaining(ctx, args[1])
    if remaining is None:
        return -1
    if remaining < 0:
        return -2
    return int(round(remaining))


@command("PTTL", arity=2)
def cmd_pttl(ctx: CommandContext, args: List[bytes]) -> int:
    remaining = _remaining(ctx, args[1])
    if remaining is None:
        return -1
    if remaining < 0:
        return -2
    return int(round(remaining * 1000))


def _remaining(ctx: CommandContext, key: bytes) -> Optional[float]:
    """None = no TTL; negative = key missing (caller maps to -2)."""
    if ctx.lookup_read(key) is None:
        return -1.0
    expire_at = ctx.db.get_expiry(key)
    if expire_at is None:
        return None
    return expire_at - ctx.now


@command("PERSIST", arity=2, write=True)
def cmd_persist(ctx: CommandContext, args: List[bytes]) -> int:
    if ctx.lookup_write(args[1]) is None:
        return 0
    if ctx.store.clear_key_expiry(ctx.db, args[1]):
        ctx.mark_dirty()
        return 1
    return 0


@command("DUMP", arity=2)
def cmd_dump(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    """Serialize a key's value into a portable, checksummed payload.

    The transfer format slot migration ships between shards; nil if the
    key does not exist (mirrors Redis' DUMP).
    """
    from .snapshot import dump_value
    value = ctx.lookup_read(args[1])
    if value is None:
        return None
    return dump_value(value)


@command("RESTORE", arity=-4, write=True)
def cmd_restore(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    """Materialize a DUMP payload under ``key``.

    ``RESTORE key ttl-ms payload [REPLACE]``: refuses to overwrite an
    existing key unless REPLACE is given (Redis' BUSYKEY), verifies the
    payload checksum, and applies ``ttl-ms`` (0 = no expiry) relative to
    the receiving server's clock.
    """
    from ..common.errors import CorruptionError
    from .snapshot import load_value
    key, ttl_ms = args[1], parse_int(args[2])
    if ttl_ms < 0:
        raise RespError("ERR Invalid TTL value, must be >= 0")
    replace = False
    for option in args[4:]:
        if option.upper() == b"REPLACE":
            replace = True
        else:
            raise RespError("ERR syntax error")
    existing = ctx.lookup_write(key)
    if existing is not None:
        if not replace:
            raise RespError("BUSYKEY Target key name already exists.")
        ctx.delete(key)
    try:
        value = load_value(args[3])
    except CorruptionError:
        raise RespError("ERR DUMP payload version or checksum are wrong")
    ctx.set_value(key, value)
    if ttl_ms > 0:
        ctx.set_expiry(key, ctx.now + ttl_ms / 1000.0)
    return OK
