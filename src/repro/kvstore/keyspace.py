"""The keyspace: one database's key dictionary plus its expires dictionary.

Redis keeps two dicts per database: ``dict`` (key -> value) and ``expires``
(key -> expire-at milliseconds).  The probabilistic active-expiry algorithm
needs *uniform random sampling* from the expires dict, which a plain Python
dict cannot do in O(1); :class:`RandomAccessSet` provides it the same way
Redis' dictGetRandomKey does over its hash table.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from .datatypes import RedisValue


class RandomAccessSet:
    """A set of keys supporting O(1) add/remove/uniform-random-choice."""

    def __init__(self) -> None:
        self._items: List[bytes] = []
        self._index: Dict[bytes, int] = {}

    def add(self, key: bytes) -> None:
        if key in self._index:
            return
        self._index[key] = len(self._items)
        self._items.append(key)

    def discard(self, key: bytes) -> None:
        pos = self._index.pop(key, None)
        if pos is None:
            return
        last = self._items.pop()
        if pos < len(self._items):
            self._items[pos] = last
            self._index[last] = pos

    def random_key(self, rng: random.Random) -> Optional[bytes]:
        if not self._items:
            return None
        return self._items[rng.randrange(len(self._items))]

    def __contains__(self, key: bytes) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._items)


class Database:
    """One numbered database: values, expiry times, and sampling support.

    Expiry times are absolute seconds on the store's clock.  The database
    itself never *checks* expiry -- callers (lazy expiration on access, the
    active expiry cycles) own that policy, mirroring the split between
    Redis' db.c and expire.c.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.data: Dict[bytes, RedisValue] = {}
        self.expires: Dict[bytes, float] = {}
        self.expires_sample: RandomAccessSet = RandomAccessSet()
        self.all_keys_sample: RandomAccessSet = RandomAccessSet()
        # Monotone counters for INFO / stats.
        self.expired_count = 0
        self.hits = 0
        self.misses = 0

    # -- raw accessors (no expiry policy) ------------------------------------

    def set_value(self, key: bytes, value: RedisValue) -> None:
        if key not in self.data:
            self.all_keys_sample.add(key)
        self.data[key] = value

    def get_value(self, key: bytes) -> Optional[RedisValue]:
        return self.data.get(key)

    def remove(self, key: bytes) -> bool:
        """Delete key, value, and any expiry.  True if the key existed."""
        existed = self.data.pop(key, None) is not None
        if existed:
            self.all_keys_sample.discard(key)
        self.clear_expiry(key)
        return existed

    def __contains__(self, key: bytes) -> bool:
        return key in self.data

    def __len__(self) -> int:
        return len(self.data)

    # -- expiry bookkeeping -----------------------------------------------------

    def set_expiry(self, key: bytes, expire_at: float) -> None:
        if key not in self.data:
            raise KeyError(f"cannot set expiry on missing key {key!r}")
        self.expires[key] = expire_at
        self.expires_sample.add(key)

    def get_expiry(self, key: bytes) -> Optional[float]:
        return self.expires.get(key)

    def clear_expiry(self, key: bytes) -> bool:
        had = self.expires.pop(key, None) is not None
        if had:
            self.expires_sample.discard(key)
        return had

    def is_volatile(self, key: bytes) -> bool:
        return key in self.expires

    @property
    def volatile_count(self) -> int:
        return len(self.expires)

    # -- iteration --------------------------------------------------------------

    def keys(self) -> List[bytes]:
        return list(self.data.keys())

    def random_key(self, rng: random.Random) -> Optional[bytes]:
        return self.all_keys_sample.random_key(rng)

    def flush(self) -> int:
        """Remove everything; returns the number of keys dropped."""
        count = len(self.data)
        self.data.clear()
        self.expires.clear()
        self.expires_sample = RandomAccessSet()
        self.all_keys_sample = RandomAccessSet()
        return count
