"""SLOWLOG: Redis' in-memory log of slow command executions.

Section 4.1 of the paper evaluates slowlog (with threshold 0, i.e. log
everything) as a candidate audit mechanism and rejects it: entries live in
a bounded in-memory ring, so it is neither durable nor complete.  The
implementation here reproduces both the mechanism and those limitations so
the micro-benchmark can compare it fairly against AOF-based logging.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence


@dataclass(frozen=True)
class SlowlogEntry:
    entry_id: int
    timestamp: float
    duration: float
    args: tuple


class Slowlog:
    """Bounded ring of commands slower than ``threshold`` seconds.

    ``threshold=0`` logs every command (the paper's audit configuration);
    ``threshold < 0`` disables logging, both as in Redis.
    """

    def __init__(self, threshold: float = 10e-3, max_len: int = 128,
                 record_cost: float = 0.0) -> None:
        self.threshold = threshold
        self.max_len = max_len
        self.record_cost = record_cost
        self._entries: Deque[SlowlogEntry] = deque(maxlen=max_len)
        self._next_id = 0
        self.total_recorded = 0

    def maybe_record(self, timestamp: float, duration: float,
                     args: Sequence[bytes]) -> bool:
        if self.threshold < 0 or duration < self.threshold:
            return False
        self._entries.appendleft(SlowlogEntry(
            entry_id=self._next_id, timestamp=timestamp,
            duration=duration, args=tuple(args)))
        self._next_id += 1
        self.total_recorded += 1
        return True

    def get(self, count: int = 10) -> List[SlowlogEntry]:
        """Most recent entries first, like SLOWLOG GET."""
        return list(self._entries)[:count]

    def reset(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dropped(self) -> int:
        """Entries lost to the ring bound -- the audit-completeness gap."""
        return self.total_recorded - len(self._entries)
