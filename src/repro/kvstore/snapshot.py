"""RDB-style point-in-time snapshots with integrity checksums.

The binary layout is a simplified RDB: a magic/version header, per-database
sections, length-prefixed records with a type tag and optional expiry, and
a trailing CRC-32 over everything before it.  Snapshots matter to the GDPR
analysis because they are one of the "internal subsystems" where deleted
personal data can outlive a DEL (section 4.3); the GDPR layer therefore
tracks snapshot lineage and the erasure engine can force re-dumps.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..common.errors import CorruptionError
from ..common.hashing import crc32_of
from .datatypes import (
    TYPE_HASH,
    TYPE_LIST,
    TYPE_SET,
    TYPE_STRING,
    TYPE_ZSET,
    RedisValue,
    ZSet,
    type_name,
)
from .keyspace import Database

MAGIC = b"REPRODB1"

_TYPE_CODES = {TYPE_STRING: 0, TYPE_HASH: 1, TYPE_LIST: 2, TYPE_SET: 3,
               TYPE_ZSET: 4}
_CODE_TYPES = {v: k for k, v in _TYPE_CODES.items()}

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


def _pack_bytes(out: List[bytes], data: bytes) -> None:
    out.append(_U32.pack(len(data)))
    out.append(data)


def _pack_value(out: List[bytes], value: RedisValue) -> None:
    kind = type_name(value)
    out.append(bytes([_TYPE_CODES[kind]]))
    if kind == TYPE_STRING:
        _pack_bytes(out, value)
    elif kind == TYPE_HASH:
        out.append(_U32.pack(len(value)))
        for field in sorted(value):
            _pack_bytes(out, field)
            _pack_bytes(out, value[field])
    elif kind == TYPE_LIST:
        out.append(_U32.pack(len(value)))
        for item in value:
            _pack_bytes(out, item)
    elif kind == TYPE_SET:
        out.append(_U32.pack(len(value)))
        for item in sorted(value):
            _pack_bytes(out, item)
    else:  # zset
        out.append(_U32.pack(len(value)))
        for member, score in value.items():
            _pack_bytes(out, member)
            out.append(_F64.pack(score))


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CorruptionError("snapshot truncated")
        chunk = self._data[self._pos:self._pos + n]
        self._pos += n
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def blob(self) -> bytes:
        return self.take(self.u32())

    def byte(self) -> int:
        return self.take(1)[0]

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


def _read_value(reader: _Reader) -> RedisValue:
    """Parse one type-tagged value (the payload layout of
    :func:`_pack_value`)."""
    kind = _CODE_TYPES.get(reader.byte())
    if kind is None:
        raise CorruptionError("unknown value type code")
    value: RedisValue
    if kind == TYPE_STRING:
        value = reader.blob()
    elif kind == TYPE_HASH:
        value = {reader.blob(): reader.blob()
                 for _ in range(reader.u32())}
        # Note: dict comprehension evaluates key then value in
        # insertion order, matching _pack_value's layout.
    elif kind == TYPE_LIST:
        value = [reader.blob() for _ in range(reader.u32())]
    elif kind == TYPE_SET:
        value = {reader.blob() for _ in range(reader.u32())}
    else:
        value = ZSet()
        for _ in range(reader.u32()):
            member = reader.blob()
            value.add(member, reader.f64())
    return value


DUMP_MAGIC = b"REPRODMP1"


def dump_value(value: RedisValue) -> bytes:
    """Serialize one value as a self-contained DUMP payload.

    The format mirrors Redis' ``DUMP``: a version-tagged body (the same
    type-tagged encoding snapshots use) with a trailing CRC-32, so a
    payload can travel between nodes -- this is what slot migration ships
    over the wire -- and be integrity-checked on RESTORE.
    """
    out: List[bytes] = [DUMP_MAGIC]
    _pack_value(out, value)
    body = b"".join(out)
    return body + _U32.pack(crc32_of(body))


def load_value(data: bytes) -> RedisValue:
    """Parse and verify a :func:`dump_value` payload."""
    if len(data) < len(DUMP_MAGIC) + 5:
        raise CorruptionError("dump payload too small")
    body, crc_bytes = data[:-4], data[-4:]
    if crc32_of(body) != _U32.unpack(crc_bytes)[0]:
        raise CorruptionError("dump payload CRC mismatch")
    reader = _Reader(body)
    if reader.take(len(DUMP_MAGIC)) != DUMP_MAGIC:
        raise CorruptionError("bad dump payload magic")
    value = _read_value(reader)
    if not reader.exhausted:
        raise CorruptionError("trailing bytes after dump payload")
    return value


def dump(databases: List[Database]) -> bytes:
    """Serialize databases to snapshot bytes (CRC-terminated)."""
    out: List[bytes] = [MAGIC]
    populated = [db for db in databases if len(db) > 0]
    out.append(_U32.pack(len(populated)))
    for db in populated:
        out.append(_U32.pack(db.index))
        out.append(_U64.pack(len(db)))
        for key in db.keys():
            _pack_bytes(out, key)
            expire_at = db.get_expiry(key)
            if expire_at is None:
                out.append(b"\x00")
            else:
                out.append(b"\x01")
                out.append(_F64.pack(expire_at))
            _pack_value(out, db.get_value(key))
    body = b"".join(out)
    return body + _U32.pack(crc32_of(body))


def load(data: bytes) -> List[Tuple[int, bytes, Optional[float], RedisValue]]:
    """Parse snapshot bytes into (db_index, key, expire_at, value) tuples.

    Verifies the trailing CRC before trusting any byte.
    """
    if len(data) < len(MAGIC) + 8:
        raise CorruptionError("snapshot too small")
    body, crc_bytes = data[:-4], data[-4:]
    if crc32_of(body) != _U32.unpack(crc_bytes)[0]:
        raise CorruptionError("snapshot CRC mismatch")
    reader = _Reader(body)
    if reader.take(len(MAGIC)) != MAGIC:
        raise CorruptionError("bad snapshot magic")
    entries: List[Tuple[int, bytes, Optional[float], RedisValue]] = []
    for _ in range(reader.u32()):
        db_index = reader.u32()
        for _ in range(reader.u64()):
            key = reader.blob()
            expire_at = reader.f64() if reader.byte() == 1 else None
            entries.append((db_index, key, expire_at, _read_value(reader)))
    return entries


def snapshot_mentions_key(data: bytes, key: bytes) -> bool:
    """Does the snapshot still contain ``key``?  (Section 4.3 audit.)"""
    return any(entry_key == key for _, entry_key, _, _ in load(data))
