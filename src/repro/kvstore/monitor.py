"""MONITOR: streaming every command to subscribed clients.

The paper's section 4.1 considers MONITOR as an audit mechanism and rejects
it: it streams plaintext over the network (needing its own encryption) and
costs more than AOF piggybacking.  :class:`MonitorFeed` reproduces the
mechanism: each executed command is formatted and pushed to every attached
sink, charging serialization CPU plus (if the sink is a network endpoint)
transmission on the simulated channel.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

MonitorSink = Callable[[bytes], None]

# Formatting + copy cost per streamed record (CPU, seconds).
FORMAT_COST = 3e-6


class MonitorFeed:
    """Dispatches command traces to attached MONITOR subscribers."""

    def __init__(self, clock=None, format_cost: float = FORMAT_COST) -> None:
        self._sinks: List[MonitorSink] = []
        self._clock = clock
        self._format_cost = format_cost
        self.records_streamed = 0

    def attach(self, sink: MonitorSink) -> None:
        self._sinks.append(sink)

    def detach(self, sink: MonitorSink) -> None:
        self._sinks.remove(sink)

    @property
    def active(self) -> bool:
        return bool(self._sinks)

    def subscriber_count(self) -> int:
        return len(self._sinks)

    @staticmethod
    def format_record(timestamp: float, db_index: int,
                      args: Sequence[bytes]) -> bytes:
        """The human-readable line MONITOR emits:
        ``<ts> [<db> <addr>] "CMD" "arg" ...``"""
        rendered = " ".join(
            '"%s"' % arg.decode("utf-8", "replace") for arg in args)
        return f"{timestamp:.6f} [{db_index} sim:0] {rendered}\n".encode()

    def publish(self, timestamp: float, db_index: int,
                args: Sequence[bytes]) -> None:
        if not self._sinks:
            return
        record = self.format_record(timestamp, db_index, args)
        if self._clock is not None and self._format_cost:
            self._clock.advance(self._format_cost)
        for sink in self._sinks:
            sink(record)
        self.records_streamed += 1
