"""Additional string/hash commands from the Redis 4.0 surface:
range reads/writes and float increments."""

from __future__ import annotations

from typing import List

from ..common.resp import RespError
from .commands import CommandContext, command, parse_float, parse_int
from .datatypes import expect_hash, expect_string


def _format_float(value: float) -> bytes:
    """Redis prints floats with up to 17 significant digits, trimming
    trailing zeros ('10.5', not '10.50000')."""
    text = repr(value)
    if text.endswith(".0"):
        text = text[:-2]
    return text.encode("ascii")


@command("GETRANGE", arity=4)
def cmd_getrange(ctx: CommandContext, args: List[bytes]) -> bytes:
    value = ctx.lookup_read(args[1])
    if value is None:
        return b""
    data = expect_string(value)
    start = parse_int(args[2])
    end = parse_int(args[3])
    if start < 0:
        start = max(len(data) + start, 0)
    if end < 0:
        end = len(data) + end
    if end < start:
        return b""
    return data[start:end + 1]


@command("SETRANGE", arity=4, write=True)
def cmd_setrange(ctx: CommandContext, args: List[bytes]) -> int:
    offset = parse_int(args[2])
    if offset < 0:
        raise RespError("ERR offset is out of range")
    patch = args[3]
    existing = ctx.lookup_write(args[1])
    current = bytearray(expect_string(existing)
                        if existing is not None else b"")
    if len(current) < offset:
        current.extend(b"\x00" * (offset - len(current)))
    current[offset:offset + len(patch)] = patch
    ctx.set_value(args[1], bytes(current))
    return len(current)


@command("INCRBYFLOAT", arity=3, write=True)
def cmd_incrbyfloat(ctx: CommandContext, args: List[bytes]) -> bytes:
    delta = parse_float(args[2], "ERR value is not a valid float")
    existing = ctx.lookup_write(args[1])
    if existing is None:
        current = 0.0
    else:
        raw = expect_string(existing)
        try:
            current = float(raw)
        except ValueError:
            raise RespError("ERR value is not a valid float")
    updated = current + delta
    encoded = _format_float(updated)
    ctx.set_value(args[1], encoded)
    return encoded


@command("HINCRBY", arity=4, write=True)
def cmd_hincrby(ctx: CommandContext, args: List[bytes]) -> int:
    delta = parse_int(args[3])
    value = ctx.lookup_write(args[1])
    if value is None:
        mapping = {}
        ctx.set_value(args[1], mapping)
    else:
        mapping = expect_hash(value)
    raw = mapping.get(args[2], b"0")
    try:
        current = int(raw)
    except ValueError:
        raise RespError("ERR hash value is not an integer")
    updated = current + delta
    mapping[args[2]] = str(updated).encode("ascii")
    ctx.mark_dirty()
    return updated


@command("HSTRLEN", arity=3)
def cmd_hstrlen(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    return len(expect_hash(value).get(args[2], b""))
