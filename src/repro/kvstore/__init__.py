"""A Redis-like key-value store: the substrate the paper retrofits.

Public surface::

    store = KeyValueStore(StoreConfig(appendonly=True, appendfsync="always"))
    store.execute("SET", "user:1", "...")
    store.execute("EXPIRE", "user:1", 300)
"""

from .aof import AofRewriter, AofWriter, FsyncPolicy, contains_key, replay_commands
from .commands import REGISTRY, Session
from .datatypes import ZSet, type_name
from .expiry import (
    FullScanExpiryCycle,
    IndexedExpiryCycle,
    LazyExpiryCycle,
    make_strategy,
)
from .keyspace import Database, RandomAccessSet
from .monitor import MonitorFeed
from .replication import ReplicationLink, ReplicationManager
from .server import (
    BufferedTransport,
    EventConnection,
    EventLoopMixin,
    EventLoopServer,
    RawTransport,
    StoreClient,
    StoreServer,
    TlsTransport,
    connect_event,
    connect_plain,
    connect_tls,
)
from .slowlog import Slowlog
from .snapshot import dump as snapshot_dump
from .snapshot import load as snapshot_load
from .snapshot import snapshot_mentions_key
from .store import KeyValueStore, StoreConfig

__all__ = [
    "KeyValueStore",
    "StoreConfig",
    "Session",
    "Database",
    "RandomAccessSet",
    "ZSet",
    "type_name",
    "REGISTRY",
    "AofWriter",
    "AofRewriter",
    "FsyncPolicy",
    "replay_commands",
    "contains_key",
    "LazyExpiryCycle",
    "FullScanExpiryCycle",
    "IndexedExpiryCycle",
    "make_strategy",
    "MonitorFeed",
    "ReplicationManager",
    "ReplicationLink",
    "Slowlog",
    "StoreServer",
    "StoreClient",
    "RawTransport",
    "TlsTransport",
    "BufferedTransport",
    "EventLoopMixin",
    "EventLoopServer",
    "EventConnection",
    "connect_event",
    "connect_plain",
    "connect_tls",
    "snapshot_dump",
    "snapshot_load",
    "snapshot_mentions_key",
]
