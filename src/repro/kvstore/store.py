"""The key-value store facade: databases, commands, persistence, cron.

:class:`KeyValueStore` is the reproduction's stand-in for Redis 4.0.11.  It
wires the keyspace, command table, AOF, snapshotting, slowlog, MONITOR, and
the pluggable active-expiry strategy behind one ``execute`` entry point,
and runs background work (expiry cycles, everysec fsync, AOF auto-rewrite)
from a cron driven by its clock -- the same serverCron structure Redis has.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..common.clock import Clock, SimClock
from ..common.errors import PersistenceError
from ..device.append_log import AppendLog
from ..engine.base import StorageEngine, StoredRecord, register_engine
from . import cmd_admin  # noqa: F401  (imports register commands)
from . import cmd_collections  # noqa: F401
from . import cmd_hash  # noqa: F401
from . import cmd_keys  # noqa: F401
from . import cmd_strings  # noqa: F401
from . import cmd_strings_ext  # noqa: F401
from .aof import AofRewriter, AofWriter, FsyncPolicy, replay_commands
from .commands import CommandContext, Session, lookup, normalize_args
from .datatypes import RedisValue
from .expiry import ExpiryStrategy, make_strategy
from .keyspace import Database
from .monitor import MonitorFeed
from .slowlog import Slowlog
from . import snapshot as snapshot_format

# Re-exported from the engine interface (pre-refactor import sites).
from ..engine.base import DeletionListener, WriteListener  # noqa: E402,F401


@dataclass
class StoreConfig:
    """Tunable server configuration (the paper's experiment knobs).

    ``appendonly`` + ``appendfsync`` + ``aof_log_reads`` span the paper's
    monitoring configurations; ``expiry_strategy`` spans Figure 2;
    ``aof_rewrite_interval`` is the section 4.3 periodic-compaction bound.
    """

    databases: int = 16
    hz: int = 10
    appendonly: bool = False
    appendfsync: str = "everysec"
    aof_log_reads: bool = False
    aof_record_base_cost: float = 0.0
    aof_record_per_byte_cost: float = 0.0
    auto_aof_rewrite_percentage: int = 0   # 0 disables growth-based rewrite
    auto_aof_rewrite_min_size: int = 1 << 20
    aof_rewrite_interval: float = 0.0      # seconds; 0 disables periodic
    expiry_strategy: str = "lazy"
    command_cpu_cost: float = 0.0
    slowlog_threshold: float = 10e-3
    slowlog_max_len: int = 128
    seed: int = 0
    extra: Dict[str, str] = field(default_factory=dict)


# One counter contract for every engine (repro.engine.base); the old
# name stays as an alias for pre-refactor callers.
from ..engine.base import EngineStats as StoreStats  # noqa: E402


class KeyValueStore(StorageEngine):
    """A single-node, single-threaded key-value store (the "redislike"
    :class:`~repro.engine.base.StorageEngine`)."""

    engine_name = "redislike"
    supports_set_with_expiry = True

    def __init__(self, config: Optional[StoreConfig] = None,
                 clock: Optional[Clock] = None,
                 aof_log: Optional[AppendLog] = None) -> None:
        super().__init__()
        self.config = config if config is not None else StoreConfig()
        self.clock = clock if clock is not None else SimClock()
        self.rng = random.Random(self.config.seed)
        self.databases = [Database(i) for i in range(self.config.databases)]
        self.stats = StoreStats()
        self.slowlog = Slowlog(threshold=self.config.slowlog_threshold,
                               max_len=self.config.slowlog_max_len)
        self.monitor = MonitorFeed(clock=self.clock)
        self.expiry: ExpiryStrategy = make_strategy(
            self.config.expiry_strategy, hz=self.config.hz,
            rng=random.Random(self.config.seed + 1))
        self.aof: Optional[AofWriter] = None
        self.aof_log: Optional[AppendLog] = None
        if self.config.appendonly:
            self.aof_log = aof_log if aof_log is not None else AppendLog(
                clock=self.clock)
            self.aof = AofWriter(
                self.aof_log, self.clock,
                policy=FsyncPolicy.parse(self.config.appendfsync),
                log_reads=self.config.aof_log_reads,
                record_base_cost=self.config.aof_record_base_cost,
                record_per_byte_cost=self.config.aof_record_per_byte_cost)
        self.last_snapshot: Optional[bytes] = None
        self.last_snapshot_at: Optional[float] = None
        self._default_session = Session()
        self._loading = False
        self._last_cron = self.clock.now()
        self._last_rewrite = self.clock.now()
        self._aof_base_size = 0
        self.rewrites_completed = 0

    # -- command execution -------------------------------------------------------

    def session(self, db_index: int = 0) -> Session:
        """A fresh client session (its own SELECTed database)."""
        return Session(db_index)

    def execute(self, *args: Any, session: Optional[Session] = None) -> Any:
        """Execute one command; raises on protocol/type errors.

        Accepts str/bytes/int/float arguments for convenience; everything
        is normalized to bytes before dispatch, as over the wire.
        """
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        spec = lookup(argv[0])
        spec.check_arity(len(argv))
        if session is None:
            session = self._default_session
        start = self.clock.now()
        if self.config.command_cpu_cost:
            self.clock.advance(self.config.command_cpu_cost)
        ctx = CommandContext(self, session, start)
        reply = spec.handler(ctx, argv)
        duration = self.clock.now() - start
        self.stats.commands_processed += 1
        self.slowlog.maybe_record(start, duration, argv)
        self.monitor.publish(start, session.db_index, argv)
        if spec.touches_keyspace and not self._loading:
            effective_write = spec.is_write and ctx.dirty > 0
            records: Optional[List[List[bytes]]] = None
            if self.aof is not None or (effective_write
                                        and self.write_listeners):
                records = self._aof_records(spec, argv, session,
                                            effective_write)
            if self.aof is not None:
                for record in records:
                    self.aof.feed_command(session.db_index, record,
                                          is_write=effective_write)
                self.aof.post_command()
                if effective_write \
                        and self.config.auto_aof_rewrite_percentage:
                    # Growth-based rewrite is checked on the write path
                    # (not only in cron) so it also fires under zero-cost
                    # clocks.
                    self._maybe_auto_rewrite(self.clock.now())
            if effective_write and self.write_listeners:
                for record in records:
                    self.notify_write(session.db_index, record)
        self.tick()
        return reply

    _EXPIRE_FAMILY = (b"EXPIRE", b"PEXPIRE", b"EXPIREAT", b"PEXPIREAT")

    def _aof_records(self, spec, argv: List[bytes], session: Session,
                     effective_write: bool) -> List[List[bytes]]:
        """Translate a command into its AOF representation.

        Relative expiries are rewritten to absolute PEXPIREAT (as Redis
        does) so replaying at a later time preserves deadlines instead of
        restarting them.  Non-writes pass through verbatim: they are audit
        records, not state transitions.
        """
        if not effective_write:
            return [argv]
        name = spec.name
        db = self.databases[session.db_index]
        if name in self._EXPIRE_FAMILY:
            key = argv[1]
            expire_at = db.get_expiry(key)
            if expire_at is None:
                # The command deleted the key outright (TTL in the past).
                return [[b"DEL", key]]
            millis = str(int(expire_at * 1000)).encode("ascii")
            return [[b"PEXPIREAT", key, millis]]
        if name == b"RESTORE":
            # Replaying a relative TTL later would extend the key's life;
            # persist the absolute deadline instead, like EXPIRE family.
            key = argv[1]
            records = [[b"RESTORE", key, b"0", argv[3], b"REPLACE"]]
            expire_at = db.get_expiry(key)
            if expire_at is not None:
                millis = str(int(expire_at * 1000)).encode("ascii")
                records.append([b"PEXPIREAT", key, millis])
            return records
        if name in (b"SETEX", b"PSETEX") or (name == b"SET" and len(argv) > 3):
            key, value = argv[1], argv[3] if name != b"SET" else argv[2]
            expire_at = db.get_expiry(key)
            if expire_at is None:
                return [[b"SET", key, value]]
            millis = str(int(expire_at * 1000)).encode("ascii")
            if name == b"SET" and any(
                    argv[i].upper() in (b"EXAT", b"PXAT")
                    for i in range(3, len(argv))):
                # The caller already spoke in absolute time, so value +
                # deadline fuse into one replay-safe record (one AOF
                # append instead of two -- the fast-GDPR write shape).
                return [[b"SET", key, value, b"PXAT", millis]]
            return [[b"SET", key, value],
                    [b"PEXPIREAT", key, millis]]
        return [argv]

    # -- keyspace access with lazy expiry ----------------------------------------

    def key_is_expired(self, db: Database, key: bytes, now: float) -> bool:
        expire_at = db.get_expiry(key)
        return expire_at is not None and expire_at <= now

    def expire_if_needed(self, db: Database, key: bytes, now: float) -> bool:
        """Lazy expiration: reclaim the key if its TTL has passed."""
        if not self.key_is_expired(db, key, now):
            return False
        self._reclaim_expired(db, key, reason="lazy-expire")
        return True

    def lookup_key(self, db: Database, key: bytes, now: float,
                   for_read: bool) -> Optional[RedisValue]:
        self.expire_if_needed(db, key, now)
        value = db.get_value(key)
        if for_read:
            if value is None:
                db.misses += 1
                self.stats.keyspace_misses += 1
            else:
                db.hits += 1
                self.stats.keyspace_hits += 1
        return value

    def delete_key(self, db: Database, key: bytes,
                   reason: str = "del") -> bool:
        existed = db.remove(key)
        if existed:
            self.expiry.note_expiry_cleared(key)
            self.stats.deleted_keys += 1
            self.notify_deletion(db.index, key, reason, self.clock.now())
        return existed

    def set_key_expiry(self, db: Database, key: bytes,
                       expire_at: float) -> None:
        db.set_expiry(key, expire_at)
        self.expiry.note_expiry_set(key, expire_at)

    def clear_key_expiry(self, db: Database, key: bytes) -> bool:
        cleared = db.clear_expiry(key)
        if cleared:
            self.expiry.note_expiry_cleared(key)
        return cleared

    def flush_database(self, db: Database) -> int:
        dropped = db.flush()
        self.expiry.note_flush()
        self.stats.deleted_keys += dropped
        return dropped

    def _reclaim_expired(self, db: Database, key: bytes,
                         reason: str) -> None:
        """Shared path for lazy and active expiration: delete + propagate."""
        self.delete_key(db, key, reason=reason)
        self.stats.expired_keys += 1
        if self._loading:
            return
        # Redis propagates expirations as explicit DELs so replicas and
        # the AOF converge deterministically.
        if self.aof is not None:
            self.aof.feed_command(db.index, [b"DEL", key], is_write=True)
        self.notify_write(db.index, [b"DEL", key])

    def demote_remove(self, key: bytes, db_index: int = 0) -> bool:
        """Tier-demotion removal (see the engine contract): deletion tap
        fires with reason ``"demote"``, the AOF records a DEL (the
        record's durable home moved to the cold device), and the
        effective-write stream stays silent so replicas keep their
        copy."""
        db = self.databases[db_index]
        existed = self.delete_key(db, key, reason="demote")
        if existed and self.aof is not None and not self._loading:
            self.aof.feed_command(db.index, [b"DEL", key], is_write=True)
            self.aof.post_command()
        return existed

    # -- cron ---------------------------------------------------------------------

    def tick(self) -> None:
        """Run due background work.  Called after each command; callers
        driving long idle periods should call it after advancing the
        clock."""
        now = self.clock.now()
        if self.aof is not None:
            self.aof.tick(now)
        if now - self._last_cron >= 1.0 / self.config.hz:
            self._last_cron = now
            self.cron(now)

    def cron(self, now: Optional[float] = None) -> int:
        """One serverCron iteration; returns keys actively expired."""
        if now is None:
            now = self.clock.now()
        expired = 0
        for db in self.databases:
            if db.volatile_count == 0:
                continue
            expired += self.expiry.run_cycle(db, now, self.clock,
                                             self._on_active_expire)
        if self.aof is not None:
            if expired:
                self.aof.post_command()
            self._maybe_auto_rewrite(now)
        return expired

    def _on_active_expire(self, db: Database, key: bytes) -> None:
        self._reclaim_expired(db, key, reason="active-expire")

    def _maybe_auto_rewrite(self, now: float) -> None:
        interval = self.config.aof_rewrite_interval
        if interval and now - self._last_rewrite >= interval:
            self.rewrite_aof()
            return
        pct = self.config.auto_aof_rewrite_percentage
        if pct and self.aof_log is not None:
            size = self.aof_log.total_length
            base = max(self._aof_base_size,
                       self.config.auto_aof_rewrite_min_size)
            if size >= base * (1 + pct / 100.0):
                self.rewrite_aof()

    # -- persistence ----------------------------------------------------------------

    def rewrite_aof(self) -> int:
        """BGREWRITEAOF: compact the AOF to current live state."""
        if self.aof_log is None:
            raise PersistenceError("AOF is not enabled")
        size = AofRewriter(self).rewrite_into(self.aof_log)
        self._aof_base_size = size
        self._last_rewrite = self.clock.now()
        self.rewrites_completed += 1
        return size

    def replay_aof(self, data: Optional[bytes] = None,
                   tolerate_truncated_tail: bool = True) -> int:
        """Rebuild state from AOF bytes (defaults to the attached log's
        durable content).  Returns the number of commands replayed."""
        if data is None:
            if self.aof_log is None:
                raise PersistenceError("AOF is not enabled")
            data = self.aof_log.read_durable()
        commands = replay_commands(
            data, tolerate_truncated_tail=tolerate_truncated_tail)
        session = Session()
        self._loading = True
        try:
            for argv in commands:
                self.execute(*argv, session=session)
        finally:
            self._loading = False
        return len(commands)

    def save_snapshot(self) -> bytes:
        """RDB-style SAVE: serialize all databases."""
        data = snapshot_format.dump(self.databases)
        self.last_snapshot = data
        self.last_snapshot_at = self.clock.now()
        return data

    def load_snapshot(self, data: bytes) -> int:
        """Restore databases from snapshot bytes; returns keys loaded."""
        entries = snapshot_format.load(data)
        for db in self.databases:
            db.flush()
        self.expiry.note_flush()
        count = 0
        for db_index, key, expire_at, value in entries:
            db = self.databases[db_index]
            db.set_value(key, value)
            if expire_at is not None:
                self.set_key_expiry(db, key, expire_at)
            count += 1
        return count

    # -- configuration & introspection --------------------------------------------

    def config_items(self) -> Dict[str, str]:
        cfg = self.config
        return {
            "appendonly": "yes" if cfg.appendonly else "no",
            "appendfsync": cfg.appendfsync,
            "aof-log-reads": "yes" if cfg.aof_log_reads else "no",
            "hz": str(cfg.hz),
            "active-expiry-strategy": cfg.expiry_strategy,
            "auto-aof-rewrite-percentage":
                str(cfg.auto_aof_rewrite_percentage),
            "aof-rewrite-interval": str(cfg.aof_rewrite_interval),
            "slowlog-log-slower-than":
                str(int(cfg.slowlog_threshold * 1e6)),
            "slowlog-max-len": str(cfg.slowlog_max_len),
            "databases": str(cfg.databases),
        }

    def config_set(self, name: str, value: str) -> None:
        from ..common.resp import RespError
        name = name.lower()
        if name == "appendfsync":
            policy = FsyncPolicy.parse(value)
            self.config.appendfsync = policy.value
            if self.aof is not None:
                self.aof.policy = policy
        elif name == "aof-log-reads":
            flag = value.lower() in ("yes", "true", "1")
            self.config.aof_log_reads = flag
            if self.aof is not None:
                self.aof.log_reads = flag
        elif name == "hz":
            self.config.hz = max(1, int(value))
        elif name == "active-expiry-strategy":
            self.config.expiry_strategy = value
            self.expiry = make_strategy(value, hz=self.config.hz,
                                        rng=random.Random(
                                            self.config.seed + 1))
            # Rebuild auxiliary indexes from authoritative expires dicts.
            for db in self.databases:
                for key, expire_at in db.expires.items():
                    self.expiry.note_expiry_set(key, expire_at)
        elif name == "slowlog-log-slower-than":
            micros = int(value)
            self.config.slowlog_threshold = micros / 1e6 if micros >= 0 else -1
            self.slowlog.threshold = self.config.slowlog_threshold
        elif name == "slowlog-max-len":
            self.config.slowlog_max_len = int(value)
        elif name == "auto-aof-rewrite-percentage":
            self.config.auto_aof_rewrite_percentage = int(value)
        elif name == "aof-rewrite-interval":
            self.config.aof_rewrite_interval = float(value)
        else:
            raise RespError(f"ERR Unsupported CONFIG parameter: {name}")

    def info_text(self) -> str:
        lines = [
            "# Server",
            "repro_version:1.0.0",
            f"sim_time:{self.clock.now():.6f}",
            "",
            "# Persistence",
            f"aof_enabled:{1 if self.aof is not None else 0}",
            f"aof_last_rewrite_size:{self._aof_base_size}",
            f"aof_rewrites:{self.rewrites_completed}",
            f"aof_pending_bytes:"
            f"{self.aof.unsynced_bytes() if self.aof else 0}",
            "",
            "# Stats",
            f"total_commands_processed:{self.stats.commands_processed}",
            f"expired_keys:{self.stats.expired_keys}",
            f"deleted_keys:{self.stats.deleted_keys}",
            f"keyspace_hits:{self.stats.keyspace_hits}",
            f"keyspace_misses:{self.stats.keyspace_misses}",
            "",
            "# Keyspace",
        ]
        for db in self.databases:
            if len(db):
                lines.append(
                    f"db{db.index}:keys={len(db)},"
                    f"expires={db.volatile_count}")
        return "\n".join(lines) + "\n"

    # -- engine interface: keyspace views & replication --------------------------
    # (Listener management is inherited from StorageEngine.)

    def live_keys(self, db_index: int = 0) -> List[bytes]:
        """Every non-expired key of one database (no lazy-expire side
        effects); the slot-migration scan and importing-slot filters
        read the keyspace through this."""
        db = self.databases[db_index]
        now = self.clock.now()
        return [key for key in db.keys()
                if not self.key_is_expired(db, key, now)]

    def has_live_key(self, key: bytes, db_index: int = 0) -> bool:
        db = self.databases[db_index]
        return (key in db
                and not self.key_is_expired(db, key, self.clock.now()))

    def scan_records(self, db_index: int = 0):
        """Live (key, value, expire_at) records -- the GDPR index
        rebuild path."""
        db = self.databases[db_index]
        now = self.clock.now()
        for key in db.keys():
            if self.key_is_expired(db, key, now):
                continue
            yield StoredRecord(key, db.get_value(key), db.get_expiry(key))

    def key_count(self, db_index: int = 0) -> int:
        return len(self.databases[db_index])

    def spawn_replica(self, clock: Optional[Clock] = None) -> "KeyValueStore":
        """A zero-cost plain store on ``clock`` (default: this store's)
        -- the replication layer's default replica, as in
        :class:`~repro.engine.base.StorageEngine`."""
        return KeyValueStore(
            StoreConfig(),
            clock=clock if clock is not None else self.clock)


register_engine(KeyValueStore.engine_name, KeyValueStore)
