"""String commands: GET/SET and friends.

Semantics follow Redis 4.0: SET supports EX/PX/NX/XX (plus the absolute
EXAT/PXAT forms, which make SET-with-TTL a single replay-safe command),
plain SET discards any existing TTL, INCR-family commands require integer
payloads.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.resp import RespError, SimpleString
from .commands import CommandContext, command, parse_int
from .datatypes import expect_string

OK = SimpleString("OK")


@command("GET", arity=2)
def cmd_get(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    value = ctx.lookup_read(args[1])
    if value is None:
        return None
    return expect_string(value)


@command("SET", arity=-3, write=True)
def cmd_set(ctx: CommandContext, args: List[bytes]) -> Optional[SimpleString]:
    key, value = args[1], args[2]
    expire_at: Optional[float] = None
    require_exists: Optional[bool] = None
    i = 3
    while i < len(args):
        option = args[i].upper()
        if option in (b"EX", b"PX"):
            if i + 1 >= len(args):
                raise RespError("ERR syntax error")
            amount = parse_int(args[i + 1])
            if amount <= 0:
                raise RespError("ERR invalid expire time in set")
            seconds = amount if option == b"EX" else amount / 1000.0
            expire_at = ctx.now + seconds
            i += 2
        elif option in (b"EXAT", b"PXAT"):
            if i + 1 >= len(args):
                raise RespError("ERR syntax error")
            amount = parse_int(args[i + 1])
            if amount <= 0:
                raise RespError("ERR invalid expire time in set")
            expire_at = float(amount) if option == b"EXAT" \
                else amount / 1000.0
            i += 2
        elif option == b"NX":
            if require_exists is True:
                raise RespError("ERR syntax error")
            require_exists = False
            i += 1
        elif option == b"XX":
            if require_exists is False:
                raise RespError("ERR syntax error")
            require_exists = True
            i += 1
        else:
            raise RespError("ERR syntax error")
    existing = ctx.lookup_write(key)
    if require_exists is True and existing is None:
        return None
    if require_exists is False and existing is not None:
        return None
    ctx.set_value(key, value)
    # Plain SET clears any previous TTL (Redis semantics).
    ctx.store.clear_key_expiry(ctx.db, key)
    if expire_at is not None:
        ctx.set_expiry(key, expire_at)
    return OK


@command("SETNX", arity=3, write=True)
def cmd_setnx(ctx: CommandContext, args: List[bytes]) -> int:
    if ctx.lookup_write(args[1]) is not None:
        return 0
    ctx.set_value(args[1], args[2])
    return 1


@command("SETEX", arity=4, write=True)
def cmd_setex(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    seconds = parse_int(args[2])
    if seconds <= 0:
        raise RespError("ERR invalid expire time in setex")
    ctx.set_value(args[1], args[3])
    ctx.set_expiry(args[1], ctx.now + seconds)
    return OK


@command("PSETEX", arity=4, write=True)
def cmd_psetex(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    millis = parse_int(args[2])
    if millis <= 0:
        raise RespError("ERR invalid expire time in psetex")
    ctx.set_value(args[1], args[3])
    ctx.set_expiry(args[1], ctx.now + millis / 1000.0)
    return OK


@command("GETSET", arity=3, write=True)
def cmd_getset(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    old = ctx.lookup_write(args[1])
    previous = expect_string(old) if old is not None else None
    ctx.set_value(args[1], args[2])
    ctx.store.clear_key_expiry(ctx.db, args[1])
    return previous


@command("APPEND", arity=3, write=True)
def cmd_append(ctx: CommandContext, args: List[bytes]) -> int:
    existing = ctx.lookup_write(args[1])
    current = expect_string(existing) if existing is not None else b""
    updated = current + args[2]
    ctx.set_value(args[1], updated)
    return len(updated)


@command("STRLEN", arity=2)
def cmd_strlen(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    return len(expect_string(value))


def _incr_by(ctx: CommandContext, key: bytes, delta: int) -> int:
    existing = ctx.lookup_write(key)
    if existing is None:
        current = 0
    else:
        raw = expect_string(existing)
        try:
            current = int(raw)
        except ValueError:
            raise RespError("ERR value is not an integer or out of range")
    updated = current + delta
    ctx.set_value(key, str(updated).encode("ascii"))
    return updated


@command("INCR", arity=2, write=True)
def cmd_incr(ctx: CommandContext, args: List[bytes]) -> int:
    return _incr_by(ctx, args[1], 1)


@command("DECR", arity=2, write=True)
def cmd_decr(ctx: CommandContext, args: List[bytes]) -> int:
    return _incr_by(ctx, args[1], -1)


@command("INCRBY", arity=3, write=True)
def cmd_incrby(ctx: CommandContext, args: List[bytes]) -> int:
    return _incr_by(ctx, args[1], parse_int(args[2]))


@command("DECRBY", arity=3, write=True)
def cmd_decrby(ctx: CommandContext, args: List[bytes]) -> int:
    return _incr_by(ctx, args[1], -parse_int(args[2]))


@command("MGET", arity=-2)
def cmd_mget(ctx: CommandContext, args: List[bytes]) -> List[Optional[bytes]]:
    out: List[Optional[bytes]] = []
    for key in args[1:]:
        value = ctx.lookup_read(key)
        out.append(value if isinstance(value, bytes) else None)
    return out


@command("MSET", arity=-3, write=True)
def cmd_mset(ctx: CommandContext, args: List[bytes]) -> SimpleString:
    pairs = args[1:]
    if len(pairs) % 2 != 0:
        raise RespError("ERR wrong number of arguments for 'mset' command")
    for i in range(0, len(pairs), 2):
        ctx.set_value(pairs[i], pairs[i + 1])
        ctx.store.clear_key_expiry(ctx.db, pairs[i])
    return OK
