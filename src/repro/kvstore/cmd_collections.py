"""List, set, and sorted-set commands.

The sorted-set subset implemented here is exactly what the YCSB Redis
binding uses to support scan workloads (ZADD an index of record keys,
ZRANGEBYSCORE to enumerate a scan window) plus enough surface for the GDPR
layer's secondary indexes to be exercised through the command API.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..common.resp import RespError
from .commands import CommandContext, command, parse_float, parse_int
from .datatypes import ZSet, expect_list, expect_set, expect_zset


# -- lists -----------------------------------------------------------------------


def _list_for_write(ctx: CommandContext, key: bytes) -> List[bytes]:
    value = ctx.lookup_write(key)
    if value is None:
        fresh: List[bytes] = []
        ctx.set_value(key, fresh)
        return fresh
    return expect_list(value)


@command("LPUSH", arity=-3, write=True)
def cmd_lpush(ctx: CommandContext, args: List[bytes]) -> int:
    items = _list_for_write(ctx, args[1])
    for element in args[2:]:
        items.insert(0, element)
    ctx.mark_dirty()
    return len(items)


@command("RPUSH", arity=-3, write=True)
def cmd_rpush(ctx: CommandContext, args: List[bytes]) -> int:
    items = _list_for_write(ctx, args[1])
    items.extend(args[2:])
    ctx.mark_dirty()
    return len(items)


def _pop(ctx: CommandContext, key: bytes, from_left: bool) -> Optional[bytes]:
    value = ctx.lookup_write(key)
    if value is None:
        return None
    items = expect_list(value)
    if not items:
        return None
    element = items.pop(0) if from_left else items.pop()
    ctx.mark_dirty()
    if not items:
        ctx.delete(key)
    return element


@command("LPOP", arity=2, write=True)
def cmd_lpop(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    return _pop(ctx, args[1], from_left=True)


@command("RPOP", arity=2, write=True)
def cmd_rpop(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    return _pop(ctx, args[1], from_left=False)


@command("LLEN", arity=2)
def cmd_llen(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    return len(expect_list(value))


@command("LRANGE", arity=4)
def cmd_lrange(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    value = ctx.lookup_read(args[1])
    if value is None:
        return []
    items = expect_list(value)
    start = parse_int(args[2])
    stop = parse_int(args[3])
    if start < 0:
        start = max(len(items) + start, 0)
    if stop < 0:
        stop = len(items) + stop
    return items[start:stop + 1]


@command("LINDEX", arity=3)
def cmd_lindex(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    value = ctx.lookup_read(args[1])
    if value is None:
        return None
    items = expect_list(value)
    index = parse_int(args[2])
    if -len(items) <= index < len(items):
        return items[index]
    return None


# -- sets ------------------------------------------------------------------------


@command("SADD", arity=-3, write=True)
def cmd_sadd(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_write(args[1])
    if value is None:
        members: set = set()
        ctx.set_value(args[1], members)
    else:
        members = expect_set(value)
    added = 0
    for member in args[2:]:
        if member not in members:
            members.add(member)
            added += 1
    if added:
        ctx.mark_dirty()
    return added


@command("SREM", arity=-3, write=True)
def cmd_srem(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    members = expect_set(value)
    removed = 0
    for member in args[2:]:
        if member in members:
            members.discard(member)
            removed += 1
    if removed:
        ctx.mark_dirty()
        if not members:
            ctx.delete(args[1])
    return removed


@command("SMEMBERS", arity=2)
def cmd_smembers(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    value = ctx.lookup_read(args[1])
    if value is None:
        return []
    return sorted(expect_set(value))


@command("SISMEMBER", arity=3)
def cmd_sismember(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    return 1 if args[2] in expect_set(value) else 0


@command("SCARD", arity=2)
def cmd_scard(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    return len(expect_set(value))


# -- sorted sets -------------------------------------------------------------------


def _parse_score_bound(raw: bytes) -> float:
    text = raw.decode("ascii", "replace")
    if text in ("-inf", "-INF"):
        return -math.inf
    if text in ("+inf", "inf", "+INF", "INF"):
        return math.inf
    return parse_float(raw, "ERR min or max is not a float")


@command("ZADD", arity=-4, write=True)
def cmd_zadd(ctx: CommandContext, args: List[bytes]) -> int:
    pairs = args[2:]
    if len(pairs) % 2 != 0:
        raise RespError("ERR syntax error")
    value = ctx.lookup_write(args[1])
    if value is None:
        zset = ZSet()
        ctx.set_value(args[1], zset)
    else:
        zset = expect_zset(value)
    added = 0
    for i in range(0, len(pairs), 2):
        score = parse_float(pairs[i], "ERR value is not a valid float")
        if zset.add(pairs[i + 1], score):
            added += 1
    ctx.mark_dirty()
    return added


@command("ZREM", arity=-3, write=True)
def cmd_zrem(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    zset = expect_zset(value)
    removed = sum(1 for member in args[2:] if zset.remove(member))
    if removed:
        ctx.mark_dirty()
        if not len(zset):
            ctx.delete(args[1])
    return removed


@command("ZSCORE", arity=3)
def cmd_zscore(ctx: CommandContext, args: List[bytes]) -> Optional[bytes]:
    value = ctx.lookup_read(args[1])
    if value is None:
        return None
    score = expect_zset(value).score(args[2])
    if score is None:
        return None
    return repr(score).encode("ascii")


@command("ZCARD", arity=2)
def cmd_zcard(ctx: CommandContext, args: List[bytes]) -> int:
    value = ctx.lookup_read(args[1])
    if value is None:
        return 0
    return len(expect_zset(value))


@command("ZRANGEBYSCORE", arity=-4)
def cmd_zrangebyscore(ctx: CommandContext, args: List[bytes]) -> List[bytes]:
    value = ctx.lookup_read(args[1])
    if value is None:
        return []
    zset = expect_zset(value)
    min_score = _parse_score_bound(args[2])
    max_score = _parse_score_bound(args[3])
    offset, count = 0, None
    if len(args) > 4:
        if len(args) != 7 or args[4].upper() != b"LIMIT":
            raise RespError("ERR syntax error")
        offset = parse_int(args[5])
        count = parse_int(args[6])
    if math.isinf(min_score) and min_score < 0:
        min_score = -math.inf
    members = zset.range_by_score(min_score, max_score, offset, count)
    return members
