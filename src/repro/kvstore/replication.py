"""Asynchronous primary -> replica replication.

GDPR's right to be forgotten "demands that the requested data be erased
in a timely manner **including all its replicas and backups**" (paper
section 2.1).  That makes replication lag a *compliance* property, not
just an availability one: a DEL on the primary leaves the data readable
on replicas until the replication stream catches up.

The model mirrors Redis async replication:

* the primary emits its effective-write stream (post-translation, so
  expirations travel as DELs and relative TTLs as absolute PEXPIREAT);
* each :class:`ReplicationLink` delivers that stream over a simulated
  channel with configurable one-way delay, applying commands in order;
* replicas are full stores of their own (reads work, their cron does NOT
  expire keys actively -- like Redis replicas, they wait for the
  primary's DELs).

:meth:`ReplicationManager.erasure_horizon` answers the compliance
question directly: given a key deleted on the primary at time t, when did
the *last* replica stop serving it?
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..common.clock import Clock
from .commands import Session
from .store import KeyValueStore


@dataclass
class ReplicaStats:
    commands_applied: int = 0
    bytes_applied: int = 0
    last_applied_at: float = 0.0


class ReplicationLink:
    """One replica and its in-flight command queue."""

    def __init__(self, name: str, replica: KeyValueStore, clock: Clock,
                 delay: float = 0.001) -> None:
        if delay < 0:
            raise ValueError("replication delay cannot be negative")
        self.name = name
        self.replica = replica
        self.clock = clock
        self.delay = delay
        self.stats = ReplicaStats()
        self._queue: Deque[Tuple[float, int, List[bytes]]] = deque()
        self._session = Session()

    def enqueue(self, db_index: int, argv: List[bytes]) -> None:
        deliver_at = self.clock.now() + self.delay
        self._queue.append((deliver_at, db_index, argv))

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def lag(self) -> float:
        """Seconds until the oldest queued command lands (0 if none)."""
        if not self._queue:
            return 0.0
        return max(self._queue[0][0] - self.clock.now(), 0.0)

    def pump(self) -> int:
        """Apply every command whose delivery time has arrived."""
        now = self.clock.now()
        applied = 0
        while self._queue and self._queue[0][0] <= now:
            _, db_index, argv = self._queue.popleft()
            if self._session.db_index != db_index:
                self._session.db_index = db_index
            self.replica.execute(*argv, session=self._session)
            self.stats.commands_applied += 1
            self.stats.bytes_applied += sum(len(a) for a in argv)
            self.stats.last_applied_at = now
            applied += 1
        return applied


class ReplicationManager:
    """Fans the primary's write stream out to replica links."""

    def __init__(self, primary: KeyValueStore) -> None:
        self.primary = primary
        self.clock = primary.clock
        self.links: Dict[str, ReplicationLink] = {}
        primary.add_write_listener(self._on_write)

    def add_replica(self, name: str, delay: float = 0.001,
                    replica: Optional[KeyValueStore] = None
                    ) -> ReplicationLink:
        if name in self.links:
            raise ValueError(f"replica {name!r} already attached")
        if replica is None:
            from .store import StoreConfig

            replica = KeyValueStore(StoreConfig(), clock=self.clock)
        link = ReplicationLink(name, replica, self.clock, delay)
        self.links[name] = link
        return link

    def remove_replica(self, name: str) -> bool:
        return self.links.pop(name, None) is not None

    def _on_write(self, db_index: int, argv: List[bytes]) -> None:
        for link in self.links.values():
            link.enqueue(db_index, argv)

    def pump(self) -> int:
        """Deliver due commands on every link; returns commands applied."""
        return sum(link.pump() for link in self.links.values())

    def full_sync(self, name: str) -> int:
        """Initial synchronization: copy a snapshot to the named replica
        (Redis' RDB-based full resync)."""
        link = self.links[name]
        snapshot = self.primary.save_snapshot()
        return link.replica.load_snapshot(snapshot)

    # -- compliance-oriented queries -----------------------------------------------

    def key_visible_anywhere(self, key: bytes, db_index: int = 0) -> bool:
        """Is the key still readable on the primary or any replica?"""
        now = self.clock.now()
        stores = [self.primary] + [l.replica for l in self.links.values()]
        for store in stores:
            db = store.databases[db_index]
            if key in db and not store.key_is_expired(db, key, now):
                return True
        return False

    def erasure_horizon(self, key: bytes, step: float = 0.001,
                        max_wait: float = 60.0,
                        db_index: int = 0) -> Optional[float]:
        """Simulated seconds until ``key`` is gone everywhere.

        Call immediately after deleting the key on the primary.  Advances
        the clock in ``step`` increments, pumping replication, until no
        store serves the key; None if ``max_wait`` elapses first.
        """
        start = self.clock.now()
        while self.clock.now() - start <= max_wait:
            self.pump()
            if not self.key_visible_anywhere(key, db_index):
                return self.clock.now() - start
            self.clock.advance(step)
        return None

    def max_lag(self) -> float:
        return max((link.lag() for link in self.links.values()),
                   default=0.0)
