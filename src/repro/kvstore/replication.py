"""Asynchronous primary -> replica replication.

GDPR's right to be forgotten "demands that the requested data be erased
in a timely manner **including all its replicas and backups**" (paper
section 2.1).  That makes replication lag a *compliance* property, not
just an availability one: a DEL on the primary leaves the data readable
on replicas until the replication stream catches up.

The model mirrors Redis async replication:

* the primary emits its effective-write stream (post-translation, so
  expirations travel as DELs and relative TTLs as absolute PEXPIREAT);
* each :class:`ReplicationLink` delivers that stream over a simulated
  channel with configurable one-way delay, applying commands in order;
* replicas are full stores of their own (reads work, their cron does NOT
  expire keys actively -- like Redis replicas, they wait for the
  primary's DELs).

:meth:`ReplicationManager.erasure_horizon` answers the compliance
question directly: given a key deleted on the primary at time t, when did
the *last* replica stop serving it?
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from ..common.clock import Clock
from ..engine.base import StorageEngine
from .commands import Session
from .store import KeyValueStore  # noqa: F401  (re-export for callers)


@dataclass
class ReplicaStats:
    commands_applied: int = 0
    bytes_applied: int = 0
    last_applied_at: float = 0.0


class ReplicationLink:
    """One replica and its in-flight command queue."""

    def __init__(self, name: str, replica: StorageEngine, clock: Clock,
                 delay: float = 0.001) -> None:
        if delay < 0:
            raise ValueError("replication delay cannot be negative")
        self.name = name
        self.replica = replica
        self.clock = clock
        self.delay = delay
        self.closed = False
        self.stats = ReplicaStats()
        self._queue: Deque[Tuple[float, int, List[bytes]]] = deque()
        self._session = Session()

    def enqueue(self, db_index: int, argv: List[bytes]) -> None:
        if self.closed:
            return
        deliver_at = self.clock.now() + self.delay
        self._queue.append((deliver_at, db_index, argv))

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def queued_commands(self) -> Iterator[Tuple[int, List[bytes]]]:
        """The in-flight (db_index, argv) stream, oldest first.  Readers
        (a replica-routing client judging stale-read risk) must not
        mutate the queue."""
        for _, db_index, argv in self._queue:
            yield db_index, argv

    def discard_backlog(self) -> int:
        """Drop every queued-but-undelivered command; returns how many.

        Used by full sync: commands enqueued before the snapshot was
        taken are already reflected in it, so replaying them on top
        would double-apply non-idempotent writes (APPEND, INCR)."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def close(self) -> None:
        """Stop this link: drop the backlog and refuse further traffic.
        The replica store survives (frozen at its last applied state)."""
        self.closed = True
        self._queue.clear()

    def lag(self) -> float:
        """Seconds until the oldest queued command lands (0 if none)."""
        if not self._queue:
            return 0.0
        return max(self._queue[0][0] - self.clock.now(), 0.0)

    def pump(self) -> int:
        """Apply every command whose delivery time has arrived."""
        now = self.clock.now()
        applied = 0
        while self._queue and self._queue[0][0] <= now:
            deliver_at, db_index, argv = self._queue.popleft()
            if self._session.db_index != db_index:
                self._session.db_index = db_index
            self.replica.execute(*argv, session=self._session)
            self.stats.commands_applied += 1
            self.stats.bytes_applied += sum(len(a) for a in argv)
            # The command *landed* at its delivery time; an infrequent
            # pump must not inflate the apparent replication lag.
            self.stats.last_applied_at = deliver_at
            applied += 1
        return applied


class ReplicationManager:
    """Fans the primary's write stream out to replica links.

    ``clock`` defaults to the primary's own clock; an event-driven
    cluster passes its shared scheduler instead, so delivery times live
    on the same timeline the pump events fire on.
    """

    def __init__(self, primary: StorageEngine,
                 clock: Optional[Clock] = None) -> None:
        self.primary = primary
        self.clock = clock if clock is not None else primary.clock
        self.links: Dict[str, ReplicationLink] = {}
        self.closed = False
        primary.add_write_listener(self._on_write)

    def add_replica(self, name: str, delay: float = 0.001,
                    replica: Optional[StorageEngine] = None
                    ) -> ReplicationLink:
        if self.closed:
            raise ValueError("replication manager is closed")
        if name in self.links:
            raise ValueError(f"replica {name!r} already attached")
        if replica is None:
            # Same-engine by construction: a relational primary gets
            # relational replicas, a KV primary gets KV replicas.
            replica = self.primary.spawn_replica(clock=self.clock)
        link = ReplicationLink(name, replica, self.clock, delay)
        self.links[name] = link
        return link

    def remove_replica(self, name: str) -> bool:
        """Detach a replica and stop its stream: the link is closed, so
        a caller still holding it cannot keep consuming (or applying)
        the primary's writes."""
        link = self.links.pop(name, None)
        if link is None:
            return False
        link.close()
        return True

    def close(self) -> None:
        """Detach from the primary's write stream and close every link.

        Without this, a discarded manager stays subscribed as a write
        listener forever: the primary keeps paying fan-out on every
        write and the garbage collector can never reclaim the replicas.
        Idempotent."""
        if self.closed:
            return
        self.closed = True
        self.primary.remove_write_listener(self._on_write)
        for link in self.links.values():
            link.close()

    def _on_write(self, db_index: int, argv: List[bytes]) -> None:
        for link in self.links.values():
            link.enqueue(db_index, argv)

    def pump(self) -> int:
        """Deliver due commands on every link; returns commands applied."""
        return sum(link.pump() for link in self.links.values())

    def full_sync(self, name: str) -> int:
        """Initial synchronization: copy a snapshot to the named replica
        (Redis' RDB-based full resync).

        The link's queued backlog is dropped first: everything enqueued
        before this instant is already reflected in the snapshot, and
        replaying it on top would double-apply non-idempotent writes
        (the replication offset is, in effect, reset to the snapshot)."""
        link = self.links[name]
        link.discard_backlog()
        snapshot = self.primary.save_snapshot()
        return link.replica.load_snapshot(snapshot)

    # -- compliance-oriented queries -----------------------------------------------

    def key_visible_anywhere(self, key: bytes, db_index: int = 0) -> bool:
        """Is the key still readable on the primary or any replica?"""
        stores = [self.primary] + [l.replica for l in self.links.values()]
        return any(store.has_live_key(key, db_index) for store in stores)

    def erasure_horizon(self, key: bytes, step: float = 0.001,
                        max_wait: float = 60.0,
                        db_index: int = 0) -> Optional[float]:
        """Simulated seconds until ``key`` is gone everywhere.

        Call immediately after deleting the key on the primary.  Advances
        the clock in ``step`` increments, pumping replication, until no
        store serves the key; None if ``max_wait`` elapses first.
        """
        start = self.clock.now()
        while self.clock.now() - start <= max_wait:
            self.pump()
            if not self.key_visible_anywhere(key, db_index):
                return self.clock.now() - start
            self.clock.advance(step)
        return None

    def max_lag(self) -> float:
        return max((link.lag() for link in self.links.values()),
                   default=0.0)
