"""Command registry and execution context.

Each command module registers handlers through :func:`command`.  A
:class:`CommandSpec` carries the Redis-style arity contract (positive =
exact argument count including the command name, negative = minimum) and a
``is_write`` flag driving AOF propagation: writes always reach the AOF;
reads reach it only when the paper's ``aof_log_reads`` extension is on.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..common.errors import ArityError, UnknownCommandError
from ..common.resp import RespError
from .datatypes import RedisValue
from .keyspace import Database

Handler = Callable[["CommandContext", List[bytes]], Any]

REGISTRY: Dict[bytes, "CommandSpec"] = {}


@dataclass(frozen=True)
class CommandSpec:
    name: bytes
    handler: Handler
    arity: int
    is_write: bool
    touches_keyspace: bool = True

    def check_arity(self, argc: int) -> None:
        if self.arity >= 0:
            if argc != self.arity:
                raise ArityError(
                    f"ERR wrong number of arguments for "
                    f"'{self.name.decode().lower()}' command")
        elif argc < -self.arity:
            raise ArityError(
                f"ERR wrong number of arguments for "
                f"'{self.name.decode().lower()}' command")


def command(name: str, arity: int, write: bool = False,
            touches_keyspace: bool = True) -> Callable[[Handler], Handler]:
    """Decorator registering a handler under ``name`` (case-insensitive)."""

    def register(handler: Handler) -> Handler:
        key = name.upper().encode()
        if key in REGISTRY:
            raise ValueError(f"duplicate command registration: {name}")
        REGISTRY[key] = CommandSpec(name=key, handler=handler, arity=arity,
                                    is_write=write,
                                    touches_keyspace=touches_keyspace)
        return handler

    return register


def lookup(name: bytes) -> CommandSpec:
    spec = REGISTRY.get(name.upper())
    if spec is None:
        raise UnknownCommandError(
            f"ERR unknown command '{name.decode('utf-8', 'replace')}'")
    return spec


class Session:
    """Per-client state: the selected database and MONITOR flag."""

    def __init__(self, db_index: int = 0) -> None:
        self.db_index = db_index
        self.monitoring = False


class CommandContext:
    """Everything a handler needs: the store, the session, and helpers
    that route keyspace access through lazy-expiry and dirty tracking."""

    __slots__ = ("store", "session", "now", "dirty")

    def __init__(self, store, session: Session, now: float) -> None:
        self.store = store
        self.session = session
        self.now = now
        self.dirty = 0

    @property
    def db(self) -> Database:
        return self.store.databases[self.session.db_index]

    def mark_dirty(self, count: int = 1) -> None:
        self.dirty += count

    # -- keyspace helpers (lazy expiry applied) --------------------------------

    def lookup_read(self, key: bytes) -> Optional[RedisValue]:
        return self.store.lookup_key(self.db, key, self.now, for_read=True)

    def lookup_write(self, key: bytes) -> Optional[RedisValue]:
        return self.store.lookup_key(self.db, key, self.now, for_read=False)

    def set_value(self, key: bytes, value: RedisValue) -> None:
        self.db.set_value(key, value)
        self.mark_dirty()

    def delete(self, key: bytes) -> bool:
        existed = self.store.delete_key(self.db, key, reason="del")
        if existed:
            self.mark_dirty()
        return existed

    def set_expiry(self, key: bytes, expire_at: float) -> None:
        self.store.set_key_expiry(self.db, key, expire_at)
        self.mark_dirty()


# -- shared argument parsing -----------------------------------------------------


def parse_int(raw: bytes, message: str = "ERR value is not an integer "
                                         "or out of range") -> int:
    try:
        return int(raw)
    except ValueError:
        raise RespError(message)


def parse_float(raw: bytes, message: str = "ERR value is not a valid "
                                           "float") -> float:
    try:
        return float(raw)
    except ValueError:
        raise RespError(message)


def glob_match(pattern: bytes, key: bytes) -> bool:
    """Redis KEYS/SCAN glob matching (via fnmatch on latin-1 text)."""
    return fnmatch.fnmatchcase(key.decode("latin-1"),
                               pattern.decode("latin-1"))


def normalize_args(args: Sequence[Any]) -> List[bytes]:
    """Coerce caller-friendly arguments (str/int/float) to bytes."""
    out: List[bytes] = []
    for arg in args:
        if isinstance(arg, bytes):
            out.append(arg)
        elif isinstance(arg, str):
            out.append(arg.encode("utf-8"))
        elif isinstance(arg, bool):
            raise TypeError("bool is not a valid command argument")
        elif isinstance(arg, int):
            out.append(str(arg).encode("ascii"))
        elif isinstance(arg, float):
            out.append(repr(arg).encode("ascii"))
        else:
            raise TypeError(
                f"unsupported argument type {type(arg).__name__}")
    return out
