"""RESP server and client over simulated transports.

This is the deployment surface the paper's encryption experiment measures:
YCSB (the client) talks RESP to Redis (the server) over the network, either
directly or through stunnel TLS proxies.  Both endpoints run in one process
here; :meth:`StoreClient.call` performs a full simulated round trip
(request transmit -> server execute -> reply transmit), so the simulated
clock sees exactly the latency a closed-loop client would.

MONITOR is implemented as in Redis: a client that issues MONITOR is
switched to a feed of every subsequent command, streamed over its own
transport (hence over TLS when the deployment is proxied -- the cost the
paper notes when rejecting MONITOR for audit logging).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..common.errors import StoreError
from ..common.resp import RespDecoder, RespError, encode, encode_command
from ..net.channel import Endpoint
from ..net.tls import TlsSession
from .commands import Session
from .store import KeyValueStore


class RawTransport:
    """Plaintext transport over a channel endpoint."""

    def __init__(self, endpoint: Endpoint) -> None:
        self._endpoint = endpoint

    def send(self, data: bytes) -> None:
        self._endpoint.send(data)

    def recv_available(self) -> bytes:
        return self._endpoint.recv()


class TlsTransport:
    """Encrypted transport over a TLS session."""

    def __init__(self, session: TlsSession) -> None:
        self._session = session

    def send(self, data: bytes) -> None:
        self._session.send(data)

    def recv_available(self) -> bytes:
        return self._session.recv_all()


class ServerConnection:
    """Server-side state for one client connection."""

    def __init__(self, transport, session: Session) -> None:
        self.transport = transport
        self.session = session
        self.decoder = RespDecoder()
        self._monitor_sink = None


class StoreServer:
    """Serves a :class:`KeyValueStore` to any number of connections."""

    def __init__(self, store: KeyValueStore) -> None:
        self.store = store
        self.connections: List[ServerConnection] = []

    def accept(self, transport) -> ServerConnection:
        conn = ServerConnection(transport, self.store.session())
        self.connections.append(conn)
        return conn

    def pump(self) -> int:
        """Process every complete pending request; returns requests served.

        Iterates over a snapshot of the connection list: a handler or
        MONITOR feed that accepts or drops a connection mid-pump must not
        mutate the sequence being iterated (a connection accepted during a
        pump is served from the next pump on).
        """
        served = 0
        for conn in list(self.connections):
            conn.decoder.feed(conn.transport.recv_available())
            while True:
                found, value = conn.decoder.next_value()
                if not found:
                    break
                served += 1
                self._serve(conn, value)
        return served

    def _serve(self, conn: ServerConnection, request: Any) -> None:
        if (not isinstance(request, list) or not request
                or not all(isinstance(a, bytes) for a in request)):
            conn.transport.send(encode(RespError(
                "ERR protocol error: expected a command array")))
            return
        name = request[0].upper()
        if name == b"MONITOR":
            self._start_monitor(conn)
            return
        conn.transport.send(encode(self._execute(conn, request)))

    def _execute(self, conn: ServerConnection, request: List[bytes]) -> Any:
        """Run one command against the store, mapping store exceptions to
        RESP errors.  Subclasses (the cluster's slot-aware server) wrap
        this to inject redirects and reply filters."""
        try:
            return self.store.execute(*request, session=conn.session)
        except RespError as exc:
            return exc
        except StoreError as exc:
            message = str(exc)
            if not message.split(" ", 1)[0].isupper():
                message = "ERR " + message
            return RespError(message)

    def _start_monitor(self, conn: ServerConnection) -> None:
        conn.session.monitoring = True
        sink = conn.transport.send
        conn._monitor_sink = sink
        self.store.monitor.attach(sink)
        conn.transport.send(b"+OK\r\n")

    def stop_monitor(self, conn: ServerConnection) -> None:
        if conn._monitor_sink is not None:
            self.store.monitor.detach(conn._monitor_sink)
            conn._monitor_sink = None
            conn.session.monitoring = False


class StoreClient:
    """Closed-loop RESP client: each call is one simulated round trip."""

    def __init__(self, transport, server: StoreServer) -> None:
        self._transport = transport
        self._server = server
        self._decoder = RespDecoder()

    def call(self, *args: Any, raise_errors: bool = True) -> Any:
        self._transport.send(encode_command(*_coerce(args)))
        self._server.pump()
        self._decoder.feed(self._transport.recv_available())
        found, value = self._decoder.next_value()
        if not found:
            raise RespError("ERR no reply received")
        if raise_errors and isinstance(value, RespError):
            raise value
        return value


def _coerce(args) -> List[bytes]:
    out = []
    for arg in args:
        if isinstance(arg, bytes):
            out.append(arg)
        elif isinstance(arg, str):
            out.append(arg.encode("utf-8"))
        elif isinstance(arg, (int, float)):
            out.append(str(arg).encode("ascii"))
        else:
            raise TypeError(f"bad argument type {type(arg).__name__}")
    return out


def connect_plain(store: KeyValueStore, channel) -> StoreClient:
    """Wire a client to ``store`` over a raw channel."""
    client_end, server_end = channel.endpoints()
    server = StoreServer(store)
    server.accept(RawTransport(server_end))
    return StoreClient(RawTransport(client_end), server)


def connect_tls(store: KeyValueStore, channel, psk: bytes,
                clock=None) -> StoreClient:
    """Wire a client to ``store`` through TLS sessions on ``channel``."""
    from ..net.tls import establish_session_pair
    client_session, server_session = establish_session_pair(
        channel, psk, clock=clock if clock is not None else channel.clock)
    server = StoreServer(store)
    server.accept(TlsTransport(server_session))
    return StoreClient(TlsTransport(client_session), server)
