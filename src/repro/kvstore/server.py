"""RESP servers and clients over simulated transports.

This is the deployment surface the paper's encryption experiment measures:
YCSB (the client) talks RESP to Redis (the server) over the network, either
directly or through stunnel TLS proxies.  Two execution models coexist:

* **Closed-loop / call-stack** -- :class:`StoreServer` +
  :class:`StoreClient`: each :meth:`StoreClient.call` performs a full
  simulated round trip (request transmit -> server execute -> reply
  transmit) inline, so the simulated clock sees exactly the latency a
  closed-loop client would.
* **Event-driven** -- :class:`EventLoopServer`: the Redis architecture
  proper.  One event loop multiplexes N connections on a scheduler clock
  (:class:`~repro.common.clock.SimClock` events): bytes arrive as
  delivery events, each loop iteration executes **one** command from one
  connection (round-robin, so no connection can starve the others),
  replies depart as scheduled transmissions at service completion, and
  background work (expiry cron, fsync) runs from daemon timer events.
  This is the intra-shard concurrency seam: many simulated clients share
  one shard and their queueing is explicit.

MONITOR is implemented as in Redis: a client that issues MONITOR is
switched to a feed of every subsequent command, streamed over its own
transport (hence over TLS when the deployment is proxied -- the cost the
paper notes when rejecting MONITOR for audit logging).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..common.clock import SimClock
from ..common.errors import StoreError
from ..common.resp import RespDecoder, RespError, encode, encode_command
from ..net.channel import Channel, Endpoint
from ..net.tls import TlsSession
from .commands import Session
from .store import KeyValueStore


class RawTransport:
    """Plaintext transport over a channel endpoint."""

    def __init__(self, endpoint: Endpoint) -> None:
        self._endpoint = endpoint

    def send(self, data: bytes) -> None:
        self._endpoint.send(data)

    def recv_available(self) -> bytes:
        return self._endpoint.recv()


class TlsTransport:
    """Encrypted transport over a TLS session."""

    def __init__(self, session: TlsSession) -> None:
        self._session = session

    def send(self, data: bytes) -> None:
        self._session.send(data)

    def recv_available(self) -> bytes:
        return self._session.recv_all()


class BufferedTransport:
    """Coalesces sends into one underlying transmit per :meth:`flush`.

    The server writes one reply per request; wrapping its transport in
    this buffer turns a batch's replies into a single message, the same
    coalescing TCP gives a real pipelined connection.  The event-loop
    server also uses it to hold a reply until the command's service time
    has elapsed.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._buffer: List[bytes] = []

    def send(self, data: bytes) -> None:
        self._buffer.append(data)

    def flush(self) -> None:
        if self._buffer:
            self._inner.send(b"".join(self._buffer))
            self._buffer.clear()

    def recv_available(self) -> bytes:
        return self._inner.recv_available()


def resp_error_from_store_error(exc: StoreError) -> RespError:
    """Map a store exception to its wire form, prefixing ``ERR`` unless
    the message already leads with an error code (WRONGTYPE, BUSYKEY,
    ...).  One mapping for every serving path -- the RESP servers and
    the cluster client's direct replica reads must format identically."""
    message = str(exc)
    if not message.split(" ", 1)[0].isupper():
        message = "ERR " + message
    return RespError(message)


class ServerConnection:
    """Server-side state for one client connection."""

    def __init__(self, transport, session: Session) -> None:
        self.transport = transport
        self.session = session
        self.decoder = RespDecoder()
        self.pending: Deque[Any] = deque()   # parsed-but-unserved requests
        self._monitor_sink = None


class StoreServer:
    """Serves a :class:`KeyValueStore` to any number of connections."""

    def __init__(self, store: KeyValueStore) -> None:
        self.store = store
        self.connections: List[ServerConnection] = []

    def accept(self, transport) -> ServerConnection:
        conn = ServerConnection(transport, self.store.session())
        self.connections.append(conn)
        return conn

    def pump(self) -> int:
        """Process every complete pending request; returns requests served.

        Iterates over a snapshot of the connection list: a handler or
        MONITOR feed that accepts or drops a connection mid-pump must not
        mutate the sequence being iterated (a connection accepted during a
        pump is served from the next pump on).
        """
        served = 0
        for conn in list(self.connections):
            conn.decoder.feed(conn.transport.recv_available())
            while True:
                found, value = conn.decoder.next_value()
                if not found:
                    break
                served += 1
                self._serve(conn, value)
        return served

    def _serve(self, conn: ServerConnection, request: Any) -> None:
        if (not isinstance(request, list) or not request
                or not all(isinstance(a, bytes) for a in request)):
            conn.transport.send(encode(RespError(
                "ERR protocol error: expected a command array")))
            return
        name = request[0].upper()
        if name == b"MONITOR":
            self._start_monitor(conn)
            return
        conn.transport.send(encode(self._execute(conn, request)))

    def _execute(self, conn: ServerConnection, request: List[bytes]) -> Any:
        """Run one command against the store, mapping store exceptions to
        RESP errors.  Subclasses (the cluster's slot-aware server) wrap
        this to inject redirects and reply filters."""
        try:
            return self.store.execute(*request, session=conn.session)
        except RespError as exc:
            return exc
        except StoreError as exc:
            return resp_error_from_store_error(exc)

    def _start_monitor(self, conn: ServerConnection) -> None:
        conn.session.monitoring = True
        sink = conn.transport.send
        conn._monitor_sink = sink
        self.store.monitor.attach(sink)
        conn.transport.send(b"+OK\r\n")

    def stop_monitor(self, conn: ServerConnection) -> None:
        if conn._monitor_sink is not None:
            self.store.monitor.detach(conn._monitor_sink)
            conn._monitor_sink = None
            conn.session.monitoring = False


class EventLoopMixin:
    """Event-driven execution for a :class:`StoreServer` (or subclass).

    The mixin owns the loop; the concrete server keeps owning command
    semantics (``_serve`` and friends), so the cluster's slot-aware server
    gains the same event loop by composition.

    Two clocks are involved and may be the same object:

    * the **scheduler** -- the cluster-wide event timeline bytes travel
      on (delivery events, loop ticks, cron);
    * the **store clock** -- the shard's service-time meter.  Executing a
      command advances it by the command's CPU/AOF/device cost; the loop
      uses the advance to know when the shard is free again.

    With separate clocks, N shards on one scheduler overlap in simulated
    time (each schedules its own completions; the heap interleaves them),
    which is where cluster parallelism now comes from.  With one shared
    clock the inline advance fires intervening events itself, so a
    single-shard deployment needs no second clock.

    Loop discipline, as in Redis: each iteration takes **one** parsed
    request from one connection, chosen round-robin over connections with
    pending input, executes it to completion, and only then schedules the
    next iteration -- a connection that pipelines 100 commands cannot
    starve its neighbours.
    """

    def _init_event_loop(self, scheduler: SimClock) -> None:
        if not hasattr(scheduler, "schedule_at"):
            raise ValueError(
                "the event loop needs a scheduling clock (SimClock)")
        self.scheduler = scheduler
        self._tick_handle = None
        self._busy_until = scheduler.now()
        self._in_tick = False
        self._cron_handle = None
        self._rr_cursor = 0
        self.loop_iterations = 0
        self._pool = None           # multi-core dispatch, when attached

    # -- multi-core dispatch (repro.cluster.workers) -------------------------

    def attach_workers(self, pool) -> None:
        """Hand the dispatch path to a worker pool: commands still queue
        per connection here, but the pool picks which simulated core runs
        each one (and when replies flush).  The server keeps owning
        command semantics (``_serve`` and friends).  With no pool
        attached the classic one-command-per-tick loop below runs
        unchanged."""
        self._pool = pool
        pool.bind(self)

    # -- connection intake -------------------------------------------------

    def accept_endpoint(self, endpoint: Endpoint) -> ServerConnection:
        """Accept an event-driven connection: the endpoint's deliveries
        feed this connection's read queue and wake the loop."""
        conn = self.accept(BufferedTransport(RawTransport(endpoint)))
        endpoint.set_receiver(lambda: self.on_readable(conn))
        return conn

    def on_readable(self, conn: ServerConnection) -> None:
        """Bytes arrived on ``conn``: parse complete requests into its
        pending queue and make sure a loop tick is scheduled."""
        conn.decoder.feed(conn.transport.recv_available())
        arrived = conn.decoder.drain()
        conn.pending.extend(arrived)
        if self._pool is not None and arrived:
            self._pool.note_arrivals(conn, len(arrived))
        if conn.pending:
            self._wake()

    # -- the loop ----------------------------------------------------------

    def _wake(self) -> None:
        if self._pool is not None:
            self._pool.wake()
            return
        if self._tick_handle is not None and self._tick_handle.active:
            return
        when = max(self.scheduler.now(), self._busy_until)
        self._tick_handle = self.scheduler.schedule_at(
            when, self._tick, label="server-tick")

    def _tick(self) -> None:
        self._tick_handle = None
        now = self.scheduler.now()
        if self._in_tick or now < self._busy_until:
            # Woken while the previous command is still executing (with a
            # shared clock, its inline advance delivers new requests *and*
            # fires their wake-ups mid-service).  One command at a time:
            # drop this tick -- the in-flight command's server-reply event
            # re-wakes the loop if requests are still pending.
            return
        conn = self._next_ready_connection()
        if conn is None:
            return
        meter = self.store.clock
        meter.sleep_until(now)
        self.loop_iterations += 1
        self._in_tick = True
        try:
            self._serve(conn, conn.pending.popleft())
        finally:
            self._in_tick = False
        finish = meter.now()
        self._busy_until = max(finish, now)
        # The reply (and any MONITOR feed it produced) leaves the NIC when
        # the service time has elapsed, not at the instant the tick began.
        self.scheduler.schedule_at(self._busy_until, self._finish_command,
                                   label="server-reply")

    def _next_ready_connection(self) -> Optional[ServerConnection]:
        conns = self.connections
        if not conns:
            return None
        for offset in range(len(conns)):
            index = (self._rr_cursor + offset) % len(conns)
            if conns[index].pending:
                self._rr_cursor = (index + 1) % len(conns)
                return conns[index]
        return None

    def _finish_command(self) -> None:
        for conn in self.connections:
            flush = getattr(conn.transport, "flush", None)
            if flush is not None:
                flush()
        if any(conn.pending for conn in self.connections):
            self._wake()

    # -- background work as timer events -----------------------------------

    def start_cron(self, interval: Optional[float] = None) -> None:
        """Run the store's serverCron from recurring daemon timer events
        (expiry cycles, everysec fsync, AOF auto-rewrite).  Daemon events
        never keep :meth:`SimClock.run_until_idle` alive by themselves."""
        if self._cron_handle is not None and self._cron_handle.active:
            return
        if interval is None:
            interval = 1.0 / self.store.config.hz

        def fire() -> None:
            if self._pool is not None:
                # Multi-core shard: bill the cron's cost (everysec
                # fsync) to the worker that wrote, not the whole shard.
                self._pool.cron_tick()
            else:
                self.store.clock.sleep_until(self.scheduler.now())
                self.store.tick()
            self._cron_handle = self.scheduler.schedule_after(
                interval, fire, label="server-cron", daemon=True)

        self._cron_handle = self.scheduler.schedule_after(
            interval, fire, label="server-cron", daemon=True)

    def stop_cron(self) -> None:
        if self._cron_handle is not None:
            self._cron_handle.cancel()
            self._cron_handle = None


class EventLoopServer(EventLoopMixin, StoreServer):
    """A single-shard event-loop server (Redis's architecture proper)."""

    def __init__(self, store: KeyValueStore,
                 scheduler: Optional[SimClock] = None) -> None:
        super().__init__(store)
        if scheduler is None:
            if not hasattr(store.clock, "schedule_at"):
                raise ValueError(
                    "store clock cannot schedule events; pass a scheduler")
            scheduler = store.clock
        self._init_event_loop(scheduler)


class EventConnection:
    """Client side of one event-driven connection.

    Replies surface through :attr:`on_reply` (push, for the open-loop
    generator) or queue in :attr:`replies` (pull).  :meth:`call` is the
    closed-loop convenience: send, then drive the scheduler until the
    reply arrives.
    """

    def __init__(self, server: EventLoopMixin,
                 channel: Optional[Channel] = None,
                 bandwidth_bps: Optional[float] = None,
                 latency: Optional[float] = None) -> None:
        self._scheduler = server.scheduler
        if channel is None:
            from ..net.channel import LAN_LATENCY, RAW_BANDWIDTH_BPS
            channel = Channel(
                clock=self._scheduler,
                bandwidth_bps=(bandwidth_bps if bandwidth_bps is not None
                               else RAW_BANDWIDTH_BPS),
                latency=latency if latency is not None else LAN_LATENCY,
                event_driven=True)
        if not channel.event_driven:
            raise ValueError("EventConnection needs an event-driven channel")
        if channel.clock is not self._scheduler:
            raise ValueError(
                "the connection's channel must deliver on the server's "
                "scheduler (deliveries on a foreign clock never reach "
                "the event loop)")
        self.channel = channel
        client_end, server_end = channel.endpoints()
        self.server_connection = server.accept_endpoint(server_end)
        self._endpoint = client_end
        self._decoder = RespDecoder()
        self.replies: Deque[Any] = deque()
        self.on_reply: Optional[Callable[[Any], None]] = None
        # When set, incoming bytes bypass the RESP decoder (a MONITOR
        # feed is a raw text stream, not a reply stream).
        self.on_raw: Optional[Callable[[bytes], None]] = None
        client_end.set_receiver(self._on_data)

    def send_command(self, *args: Any) -> None:
        self._endpoint.send(encode_command(*_coerce(args)))

    def send_raw(self, data: bytes) -> None:
        self._endpoint.send(data)

    def _on_data(self) -> None:
        if self.on_raw is not None:
            self.on_raw(self._endpoint.recv())
            return
        self._decoder.feed(self._endpoint.recv())
        for value in self._decoder.drain():
            if self.on_reply is not None:
                self.on_reply(value)
            else:
                self.replies.append(value)

    def call(self, *args: Any, raise_errors: bool = True) -> Any:
        """Closed-loop over the event core: one command, driven until its
        reply has been delivered.  Daemon events (cron) never count as
        "a reply is still coming", so a dropped reply raises instead of
        spinning on background work forever."""
        self.send_command(*args)
        while not self.replies:
            if self._scheduler.pending_live_events() == 0:
                raise RespError("ERR no reply received")
            self._scheduler.run_next()
        value = self.replies.popleft()
        if raise_errors and isinstance(value, RespError):
            raise value
        return value


def connect_event(store: KeyValueStore,
                  scheduler: Optional[SimClock] = None,
                  connections: int = 1) -> tuple:
    """Wire an :class:`EventLoopServer` with N client connections.

    Returns ``(server, [EventConnection, ...])``.
    """
    server = EventLoopServer(store, scheduler=scheduler)
    return server, [EventConnection(server) for _ in range(connections)]


class StoreClient:
    """Closed-loop RESP client: each call is one simulated round trip."""

    def __init__(self, transport, server: StoreServer) -> None:
        self._transport = transport
        self._server = server
        self._decoder = RespDecoder()

    def call(self, *args: Any, raise_errors: bool = True) -> Any:
        self._transport.send(encode_command(*_coerce(args)))
        self._server.pump()
        self._decoder.feed(self._transport.recv_available())
        found, value = self._decoder.next_value()
        if not found:
            raise RespError("ERR no reply received")
        if raise_errors and isinstance(value, RespError):
            raise value
        return value


def _coerce(args) -> List[bytes]:
    out = []
    for arg in args:
        if isinstance(arg, bytes):
            out.append(arg)
        elif isinstance(arg, str):
            out.append(arg.encode("utf-8"))
        elif isinstance(arg, (int, float)):
            out.append(str(arg).encode("ascii"))
        else:
            raise TypeError(f"bad argument type {type(arg).__name__}")
    return out


def connect_plain(store: KeyValueStore, channel) -> StoreClient:
    """Wire a client to ``store`` over a raw channel."""
    client_end, server_end = channel.endpoints()
    server = StoreServer(store)
    server.accept(RawTransport(server_end))
    return StoreClient(RawTransport(client_end), server)


def connect_tls(store: KeyValueStore, channel, psk: bytes,
                clock=None) -> StoreClient:
    """Wire a client to ``store`` through TLS sessions on ``channel``."""
    from ..net.tls import establish_session_pair
    client_session, server_session = establish_session_pair(
        channel, psk, clock=clock if clock is not None else channel.clock)
    server = StoreServer(store)
    server.accept(TlsTransport(server_session))
    return StoreClient(TlsTransport(client_session), server)
