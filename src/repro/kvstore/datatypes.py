"""Value types held by the key-value store.

The store is typed the way Redis is typed: a key holds exactly one of
string / hash / list / set, and commands check the type before operating
(raising :class:`~repro.common.errors.WrongTypeError`, Redis' WRONGTYPE).

All user payloads are ``bytes`` end to end -- values arrive over RESP as
bulk strings and are stored verbatim -- so encryption layers and the AOF
never have to guess at text encodings.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..common.errors import WrongTypeError

# Type tags, used by TYPE, the snapshot format, and the AOF rewriter.
TYPE_STRING = "string"
TYPE_HASH = "hash"
TYPE_LIST = "list"
TYPE_SET = "set"
TYPE_ZSET = "zset"


class ZSet:
    """Sorted set: members ordered by (score, member).

    Backed by a member->score dict plus a bisect-maintained sorted list, so
    ZADD and range queries are O(log n) lookups with O(n) memmove worst
    case -- the same asymptotics that make sorted sets the YCSB Redis
    binding's index for scan workloads.
    """

    __slots__ = ("_scores", "_sorted")

    def __init__(self) -> None:
        self._scores: Dict[bytes, float] = {}
        self._sorted: List[Tuple[float, bytes]] = []

    def add(self, member: bytes, score: float) -> bool:
        """Insert or update; returns True if the member was new."""
        old = self._scores.get(member)
        if old is not None:
            if old == score:
                return False
            idx = bisect.bisect_left(self._sorted, (old, member))
            del self._sorted[idx]
        self._scores[member] = score
        bisect.insort(self._sorted, (score, member))
        return old is None

    def remove(self, member: bytes) -> bool:
        score = self._scores.pop(member, None)
        if score is None:
            return False
        idx = bisect.bisect_left(self._sorted, (score, member))
        del self._sorted[idx]
        return True

    def score(self, member: bytes) -> Optional[float]:
        return self._scores.get(member)

    def range_by_score(self, min_score: float, max_score: float,
                       offset: int = 0,
                       count: Optional[int] = None) -> List[bytes]:
        lo = bisect.bisect_left(self._sorted, (min_score, b""))
        hi = bisect.bisect_left(self._sorted,
                                (math.nextafter(max_score, math.inf), b""))
        members = [member for _, member in self._sorted[lo:hi]]
        if offset:
            members = members[offset:]
        if count is not None:
            members = members[:count]
        return members

    def items(self) -> Iterator[Tuple[bytes, float]]:
        for score, member in self._sorted:
            yield member, score

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, member: bytes) -> bool:
        return member in self._scores


RedisValue = Union[bytes, Dict[bytes, bytes], List[bytes], Set[bytes], ZSet]


def type_name(value: RedisValue) -> str:
    """The Redis type tag for a stored value."""
    if isinstance(value, bytes):
        return TYPE_STRING
    if isinstance(value, dict):
        return TYPE_HASH
    if isinstance(value, list):
        return TYPE_LIST
    if isinstance(value, set):
        return TYPE_SET
    if isinstance(value, ZSet):
        return TYPE_ZSET
    raise WrongTypeError(f"unsupported stored type {type(value).__name__}")


def expect_zset(value: RedisValue) -> "ZSet":
    if not isinstance(value, ZSet):
        raise WrongTypeError(
            "WRONGTYPE Operation against a key holding the wrong kind "
            "of value")
    return value


def expect_string(value: RedisValue) -> bytes:
    if not isinstance(value, bytes):
        raise WrongTypeError(
            "WRONGTYPE Operation against a key holding the wrong kind "
            "of value")
    return value


def expect_hash(value: RedisValue) -> Dict[bytes, bytes]:
    if not isinstance(value, dict):
        raise WrongTypeError(
            "WRONGTYPE Operation against a key holding the wrong kind "
            "of value")
    return value


def expect_list(value: RedisValue) -> List[bytes]:
    if not isinstance(value, list):
        raise WrongTypeError(
            "WRONGTYPE Operation against a key holding the wrong kind "
            "of value")
    return value


def expect_set(value: RedisValue) -> Set[bytes]:
    if not isinstance(value, set):
        raise WrongTypeError(
            "WRONGTYPE Operation against a key holding the wrong kind "
            "of value")
    return value


def value_size(value: RedisValue) -> int:
    """Approximate payload size in bytes (used by INFO and benchmarks)."""
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return sum(len(k) + len(v) for k, v in value.items())
    if isinstance(value, (list, set)):
        return sum(len(item) for item in value)
    if isinstance(value, ZSet):
        return sum(len(member) + 8 for member, _ in value.items())
    raise WrongTypeError(f"unsupported stored type {type(value).__name__}")
