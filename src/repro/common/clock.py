"""Clock abstractions: wall-clock and deterministic simulated time.

Every latency-bearing component (block devices, channels, the expiry cron,
the audit log) takes a :class:`Clock` so that the whole stack can run in

* **simulated time** -- :class:`SimClock` -- where components *charge* time
  via :meth:`Clock.advance` and experiments are deterministic regardless of
  host speed; or
* **wall time** -- :class:`WallClock` -- where ``advance`` optionally sleeps,
  for demos against real hardware.

The paper's evaluation ran on a specific Dell testbed; the simulated clock is
what lets this reproduction report the *ratios* the paper reports on any
machine (see DESIGN.md section 6).
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, List, Optional, Tuple


class Clock:
    """Interface: a monotonically non-decreasing source of seconds."""

    def now(self) -> float:
        """Return the current time in (fractional) seconds."""
        raise NotImplementedError

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of elapsed time to the clock."""
        raise NotImplementedError

    def sleep_until(self, deadline: float) -> None:
        """Advance the clock to ``deadline`` if it is in the future."""
        delta = deadline - self.now()
        if delta > 0:
            self.advance(delta)


class SimClock(Clock):
    """Deterministic virtual clock.

    Time only moves when a component calls :meth:`advance`.  A scheduler of
    timer callbacks is included so background activities (active-expiry
    cycles, everysec fsync, AOF rewrite policies) can interleave with
    foreground work at the right simulated instants.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        target = self._now + seconds
        # Fire timers that fall inside the advanced window, in order.
        while self._timers and self._timers[0][0] <= target:
            when, _, callback = heapq.heappop(self._timers)
            self._now = max(self._now, when)
            callback()
        self._now = target

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``when``."""
        if when < self._now:
            raise ValueError("cannot schedule a timer in the past")
        self._timer_seq += 1
        heapq.heappush(self._timers, (when, self._timer_seq, callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback)

    def pending_timers(self) -> int:
        """Number of scheduled-but-unfired timers (for tests)."""
        return len(self._timers)


class WallClock(Clock):
    """Real time.  ``advance`` sleeps only if ``sleep=True``."""

    def __init__(self, sleep: bool = False) -> None:
        self._sleep = sleep
        self._offset = 0.0

    def now(self) -> float:
        return time.monotonic() + self._offset

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        if self._sleep:
            time.sleep(seconds)
        else:
            # Model the elapsed time without stalling the process.
            self._offset += seconds


class Stopwatch:
    """Measure elapsed time on any clock.

    >>> clock = SimClock()
    >>> watch = Stopwatch(clock)
    >>> clock.advance(1.5)
    >>> watch.elapsed()
    1.5
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start: Optional[float] = clock.now()

    def restart(self) -> None:
        self._start = self._clock.now()

    def elapsed(self) -> float:
        assert self._start is not None
        return self._clock.now() - self._start
