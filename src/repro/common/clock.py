"""Clock abstractions: wall-clock and deterministic simulated time.

Every latency-bearing component (block devices, channels, the expiry cron,
the audit log) takes a :class:`Clock` so that the whole stack can run in

* **simulated time** -- :class:`SimClock` -- where components *charge* time
  via :meth:`Clock.advance` and experiments are deterministic regardless of
  host speed; or
* **wall time** -- :class:`WallClock` -- where ``advance`` optionally sleeps,
  for demos against real hardware.

:class:`SimClock` is also the repository's **discrete-event scheduler**:
components post timed events with :meth:`SimClock.schedule_at` /
:meth:`SimClock.schedule_after` and a driver runs them in timestamp order
with :meth:`SimClock.run_next` / :meth:`SimClock.run_until_idle`.  The two
styles compose: ``advance`` fires any events that fall inside the advanced
window at their correct instants (so a component charging time inline
interleaves correctly with scheduled deliveries), and events with equal
timestamps fire in the order they were scheduled, which is what makes two
identical runs produce identical event traces.

The paper's evaluation ran on a specific Dell testbed; the simulated clock is
what lets this reproduction report the *ratios* the paper reports on any
machine (see DESIGN.md section 6).
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, List, Optional, Tuple


class Clock:
    """Interface: a monotonically non-decreasing source of seconds."""

    def now(self) -> float:
        """Return the current time in (fractional) seconds."""
        raise NotImplementedError

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of elapsed time to the clock."""
        raise NotImplementedError

    def sleep_until(self, deadline: float) -> None:
        """Advance the clock to ``deadline`` if it is in the future."""
        delta = deadline - self.now()
        if delta > 0:
            self.advance(delta)


class EventHandle:
    """A scheduled event; :meth:`cancel` prevents it from firing.

    Cancellation is lazy: the entry stays in the heap and is skipped when
    it reaches the top, so cancelling is O(1).
    """

    __slots__ = ("when", "seq", "callback", "label", "daemon", "_state",
                 "_clock")

    _PENDING, _FIRED, _CANCELLED = 0, 1, 2

    def __init__(self, when: float, seq: int, callback: Callable[[], None],
                 label: str, daemon: bool, clock: "SimClock") -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self.daemon = daemon
        self._state = self._PENDING
        self._clock = clock

    @property
    def active(self) -> bool:
        return self._state == self._PENDING

    @property
    def fired(self) -> bool:
        return self._state == self._FIRED

    def cancel(self) -> bool:
        """Cancel if still pending; returns whether anything changed."""
        if self._state != self._PENDING:
            return False
        self._state = self._CANCELLED
        if not self.daemon:
            self._clock._live_events -= 1
        return True


class SimClock(Clock):
    """Deterministic virtual clock and discrete-event scheduler.

    Time moves two ways, and they interleave correctly:

    * a component calls :meth:`advance` to charge time inline (the
      closed-loop style); any events due inside the advanced window fire
      at their own instants along the way;
    * a driver calls :meth:`run_next` / :meth:`run_until_idle` to pop
      scheduled events in (timestamp, schedule-order) order -- the
      discrete-event style the event-loop server and the open-loop load
      generator are built on.

    **Daemon events** (recurring background work: the expiry cron, the
    everysec fsync) never keep :meth:`run_until_idle` alive on their own:
    the loop stops once only daemon events remain, exactly as daemon
    threads do not keep a process alive.

    An optional **event trace** (:meth:`enable_trace`) records every fired
    event as ``(when, label)``; two identical seeded runs must produce
    identical traces, which the determinism tests assert.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)
        self._events: List[Tuple[float, int, EventHandle]] = []
        self._timer_seq = 0
        self._live_events = 0       # active non-daemon events in the heap
        self.trace: Optional[List[Tuple[float, str]]] = None

    def now(self) -> float:
        return self._now

    # -- scheduling --------------------------------------------------------

    def schedule_at(self, when: float, callback: Callable[[], None],
                    label: str = "", daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` to run when the clock reaches ``when``.

        Events with equal ``when`` fire in the order they were scheduled.
        Returns a cancellable :class:`EventHandle`.
        """
        if when < self._now:
            raise ValueError("cannot schedule a timer in the past")
        self._timer_seq += 1
        handle = EventHandle(when, self._timer_seq, callback, label, daemon,
                             self)
        heapq.heappush(self._events, (when, self._timer_seq, handle))
        if not daemon:
            self._live_events += 1
        return handle

    def schedule_after(self, delay: float, callback: Callable[[], None],
                       label: str = "", daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule a timer in the past")
        return self.schedule_at(self._now + delay, callback,
                                label=label, daemon=daemon)

    # Pre-event-core names, kept because every layer already uses them.
    def call_at(self, when: float,
                callback: Callable[[], None]) -> EventHandle:
        return self.schedule_at(when, callback)

    def call_later(self, delay: float,
                   callback: Callable[[], None]) -> EventHandle:
        return self.schedule_after(delay, callback)

    def pending_timers(self) -> int:
        """Number of scheduled-but-unfired events (cancelled excluded)."""
        return sum(1 for _, _, handle in self._events if handle.active)

    def pending_live_events(self) -> int:
        """Active non-daemon events (what keeps ``run_until_idle``
        going).  O(1): drivers poll this to tell "a reply can still
        arrive" from "only background daemons remain"."""
        return self._live_events

    # -- running -----------------------------------------------------------

    def _fire(self, handle: EventHandle) -> None:
        handle._state = EventHandle._FIRED
        if not handle.daemon:
            self._live_events -= 1
        if self.trace is not None:
            self.trace.append((handle.when, handle.label))
        handle.callback()

    def run_next(self) -> bool:
        """Pop and run the earliest pending event; False when none remain.

        The clock jumps to the event's timestamp before the callback runs
        (it never moves backwards).
        """
        while self._events:
            when, _, handle = heapq.heappop(self._events)
            if not handle.active:
                continue
            self._now = max(self._now, when)
            self._fire(handle)
            return True
        return False

    def run_until_idle(self, deadline: Optional[float] = None) -> int:
        """Run events in order until only daemon events remain (or until
        ``deadline``); returns the number of events run.

        With a ``deadline``, events due at or before it run, later ones
        stay queued, and the clock ends exactly at ``deadline`` (so a
        bounded experiment always spans the same simulated interval).
        """
        ran = 0
        while self._live_events > 0:
            if deadline is not None and self._events:
                upcoming = self._next_active_when()
                if upcoming is None or upcoming > deadline:
                    break
            if not self.run_next():
                break
            ran += 1
        if deadline is not None:
            self.sleep_until(deadline)
        return ran

    def _next_active_when(self) -> Optional[float]:
        while self._events:
            when, _, handle = self._events[0]
            if handle.active:
                return when
            heapq.heappop(self._events)
        return None

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        target = self._now + seconds
        # Fire events that fall inside the advanced window, in order.  A
        # callback may itself advance the clock (a nested service charge);
        # the outer target then only applies if time has not already
        # passed it.
        while self._events and self._events[0][0] <= target:
            when, _, handle = heapq.heappop(self._events)
            if not handle.active:
                continue
            self._now = max(self._now, when)
            self._fire(handle)
        self._now = max(self._now, target)

    # -- tracing -----------------------------------------------------------

    def enable_trace(self) -> List[Tuple[float, str]]:
        """Start recording fired events as ``(when, label)``; returns the
        live trace list (also available as ``clock.trace``)."""
        if self.trace is None:
            self.trace = []
        return self.trace


class WorkerClock(Clock):
    """One simulated core of a multi-worker shard.

    Child of a :class:`ShardClock`.  :meth:`advance` both moves the
    worker's local time forward *and* accounts it as busy time, so
    per-core utilisation falls straight out of the simulation.  Waiting
    (being moved to a dispatch instant, or being held at a barrier) goes
    through :meth:`idle_until` and is *not* billed as busy.
    """

    __slots__ = ("index", "_now", "busy_seconds")

    def __init__(self, index: int, start: float) -> None:
        self.index = index
        self._now = float(start)
        self.busy_seconds = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        self.busy_seconds += seconds

    def idle_until(self, deadline: float) -> None:
        """Move to ``deadline`` without billing busy time (waiting)."""
        if deadline > self._now:
            self._now = deadline

    def sleep_until(self, deadline: float) -> None:
        # Sleeping is waiting, not work: never bill it as busy time.
        self.idle_until(deadline)


class ShardClock(Clock):
    """A shard's service meter split across K :class:`WorkerClock` cores.

    The store underneath a multi-worker shard still sees a single
    ``Clock``; which core a service charge lands on is decided by the
    worker pool bracketing each command with :meth:`activate` /
    :meth:`release`:

    * while a worker is **active**, ``now()``/``advance()``/
      ``sleep_until()`` are that worker's -- the command's CPU and I/O
      cost is billed to exactly one core;
    * with **no active worker**, ``advance()`` charges *all* cores
      (stop-the-world).  That is deliberately the barrier semantics:
      direct calls, cron ticks (fsync), and cross-worker commands such
      as an Art. 17 fan-out occupy the whole shard, and ``now()``
      reports the frontier (max across cores).

    **Per-slot billing**: :meth:`activate` optionally names the hash
    slot the command belongs to; every ``advance`` charge inside the
    activation then also accumulates under that slot in
    :attr:`slot_seconds`, and :meth:`release` returns the activation's
    billed total.  This is what skew-aware worker placement feeds on --
    the cost of a hot slot is measured where it is paid, not estimated
    from request counts.  With ``slot=None`` (the default) the hook is
    bypassed entirely.

    With ``workers=1`` the shard clock is behaviourally identical to the
    single meter it replaces, which is what pins the worker-count-1
    regression tests.
    """

    def __init__(self, start: float = 0.0, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("a shard needs at least one worker")
        self.workers: List[WorkerClock] = [
            WorkerClock(index, start) for index in range(workers)]
        self._active: Optional[WorkerClock] = None
        self._active_slot: Optional[int] = None
        self._active_billed = 0.0
        self.slot_seconds: dict = {}    # slot -> cumulative billed seconds

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def worker(self, index: int) -> WorkerClock:
        return self.workers[index]

    def add_worker(self, start: float) -> WorkerClock:
        """Bring a new core online at ``start`` (a live worker raise)."""
        worker = WorkerClock(len(self.workers), float(start))
        self.workers.append(worker)
        return worker

    def remove_worker(self) -> WorkerClock:
        """Take the last core offline (a live worker shed).

        The remaining cores are idled forward to the departing core's
        frontier so ``now()`` (max across cores) never moves backwards
        when the shed core happened to own the frontier."""
        if self._active is not None:
            raise RuntimeError("cannot shed a worker mid-command")
        if len(self.workers) <= 1:
            raise ValueError("a shard needs at least one worker")
        retired = self.workers.pop()
        frontier = max(retired.now(),
                       max(worker.now() for worker in self.workers))
        for worker in self.workers:
            worker.idle_until(frontier)
        return retired

    def activate(self, worker: WorkerClock,
                 slot: Optional[int] = None) -> None:
        if self._active is not None:
            raise RuntimeError("shard clock already has an active worker")
        self._active = worker
        self._active_slot = slot
        self._active_billed = 0.0

    def release(self) -> float:
        """End the activation; returns the seconds billed inside it."""
        billed = self._active_billed
        if self._active_slot is not None and billed > 0.0:
            self.slot_seconds[self._active_slot] = \
                self.slot_seconds.get(self._active_slot, 0.0) + billed
        self._active = None
        self._active_slot = None
        self._active_billed = 0.0
        return billed

    def now(self) -> float:
        if self._active is not None:
            return self._active.now()
        return max(worker.now() for worker in self.workers)

    def advance(self, seconds: float) -> None:
        if self._active is not None:
            self._active.advance(seconds)
            self._active_billed += seconds
            return
        for worker in self.workers:
            worker.advance(seconds)

    def sleep_until(self, deadline: float) -> None:
        if self._active is not None:
            self._active.sleep_until(deadline)
            return
        for worker in self.workers:
            worker.idle_until(deadline)

    def busy_seconds(self) -> float:
        """Total busy time across all cores (for utilisation reports)."""
        return sum(worker.busy_seconds for worker in self.workers)


class WallClock(Clock):
    """Real time.  ``advance`` sleeps only if ``sleep=True``."""

    def __init__(self, sleep: bool = False) -> None:
        self._sleep = sleep
        self._offset = 0.0

    def now(self) -> float:
        return time.monotonic() + self._offset

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        if self._sleep:
            time.sleep(seconds)
        else:
            # Model the elapsed time without stalling the process.
            self._offset += seconds


class Stopwatch:
    """Measure elapsed time on any clock.

    >>> clock = SimClock()
    >>> watch = Stopwatch(clock)
    >>> clock.advance(1.5)
    >>> watch.elapsed()
    1.5
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start: Optional[float] = clock.now()

    def restart(self) -> None:
        self._start = self._clock.now()

    def elapsed(self) -> float:
        assert self._start is not None
        return self._clock.now() - self._start
