"""Latency histogram with fixed relative precision, YCSB-style summaries.

The YCSB runner records one latency sample per operation.  Storing raw
samples for millions of operations is wasteful, so :class:`LatencyHistogram`
buckets samples geometrically (default ~1% relative error), which is the
same trade-off HdrHistogram makes in the reference YCSB.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple


class LatencyHistogram:
    """Geometric-bucket histogram over positive latency samples (seconds)."""

    def __init__(self, relative_error: float = 0.01,
                 min_latency: float = 1e-9) -> None:
        if not 0 < relative_error < 1:
            raise ValueError("relative_error must be in (0, 1)")
        self._gamma = (1 + relative_error) / (1 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._min = min_latency
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._actual_min = math.inf

    # -- recording ---------------------------------------------------------

    def record(self, latency: float) -> None:
        """Record one latency sample; non-positive samples clamp to min."""
        latency = max(latency, self._min)
        index = int(math.ceil(math.log(latency / self._min) / self._log_gamma))
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum += latency
        self._max = max(self._max, latency)
        self._actual_min = min(self._actual_min, latency)

    def record_many(self, latencies: Iterable[float]) -> None:
        for latency in latencies:
            self.record(latency)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one.

        Identical geometries (the common case: per-worker histograms of
        one shard) merge bucket-for-bucket, losing nothing.  Differing
        geometries resample: each foreign bucket re-records its geometric
        midpoint at its count, so the merged percentiles stay within the
        coarser histogram's bucket width (plus this one's) of the truth
        -- bounded, and immaterial next to the ~1% default.  Mean/min/max
        stay exact either way (they merge from the tracked moments, not
        buckets).
        """
        if other._gamma == self._gamma and other._min == self._min:
            for index, count in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + count
        else:
            for index, count in other._buckets.items():
                value = max(other._bucket_value(index - 0.5), self._min)
                mine = int(math.ceil(
                    math.log(value / self._min) / self._log_gamma))
                self._buckets[mine] = self._buckets.get(mine, 0) + count
        self._count += other._count
        self._sum += other._sum
        self._max = max(self._max, other._max)
        self._actual_min = min(self._actual_min, other._actual_min)

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def max(self) -> float:
        return self._max

    def min(self) -> float:
        return self._actual_min if self._count else 0.0

    def _bucket_value(self, index: int) -> float:
        return self._min * self._gamma ** index

    def percentile(self, pct: float) -> float:
        """Latency at the given percentile (0 < pct <= 100)."""
        if not 0 < pct <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self._count == 0:
            return 0.0
        rank = math.ceil(self._count * pct / 100.0)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self._bucket_value(index)
        return self._max

    def percentiles(self, pcts: Iterable[float]) -> List[Tuple[float, float]]:
        return [(p, self.percentile(p)) for p in pcts]

    def summary(self) -> Dict[str, float]:
        """The summary block YCSB prints per operation type."""
        return {
            "count": float(self._count),
            "mean": self.mean(),
            "min": self.min(),
            "max": self.max(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
