"""Exception hierarchy shared by every subsystem in :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems define narrower classes here
(rather than locally) so that cross-layer code -- e.g. the GDPR layer
wrapping the key-value store -- can handle substrate errors without
importing substrate internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Generic / configuration
# ---------------------------------------------------------------------------


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SerializationError(ReproError):
    """Encoding or decoding a wire/disk format failed."""


class ProtocolError(SerializationError):
    """A peer sent bytes that violate the wire protocol (RESP framing)."""


# ---------------------------------------------------------------------------
# Device layer
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for block-device and log-device failures."""


class DeviceFullError(DeviceError):
    """The device has no remaining capacity for the requested write."""


class DeviceIOError(DeviceError):
    """An injected or underlying I/O failure occurred."""


class CorruptionError(DeviceError):
    """Stored bytes fail checksum or structural validation."""


# ---------------------------------------------------------------------------
# Crypto layer
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class IntegrityError(CryptoError):
    """Authenticated data failed its integrity check (HMAC mismatch)."""


class KeyNotFoundError(CryptoError, KeyError):
    """A referenced key id is absent from the keystore (possibly erased)."""


class KeyErasedError(KeyNotFoundError):
    """The key existed but was destroyed by crypto-erasure."""


# ---------------------------------------------------------------------------
# Network layer
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class ChannelClosedError(NetworkError):
    """The channel was closed by either endpoint."""


class HandshakeError(NetworkError):
    """TLS-like handshake failed (bad credentials or tampering)."""


# ---------------------------------------------------------------------------
# Key-value store
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for key-value store errors."""


class WrongTypeError(StoreError):
    """Operation applied against a key holding the wrong data type.

    Mirrors Redis' ``WRONGTYPE`` error.
    """


class UnknownCommandError(StoreError):
    """The command name is not registered."""


class ArityError(StoreError):
    """A command received the wrong number of arguments."""


class PersistenceError(StoreError):
    """AOF or snapshot machinery failed (write error, corrupt file)."""


# ---------------------------------------------------------------------------
# Cluster layer
# ---------------------------------------------------------------------------


class ClusterError(StoreError):
    """Base class for hash-slot cluster errors."""


class CrossSlotError(ClusterError):
    """A multi-key command referenced keys in different hash slots.

    Mirrors Redis Cluster's ``CROSSSLOT`` error; callers colocate related
    keys with ``{hash tag}`` notation.
    """


class MigrationError(ClusterError):
    """A slot-migration state transition was invalid (slot already
    migrating, migration finished twice, reassignment mid-flight)."""


class RedirectError(ClusterError):
    """Base class for cluster redirects: the contacted shard does not
    (exclusively) serve the key's slot and names the shard that does.

    Carries the wire-level fields of Redis Cluster's ``MOVED``/``ASK``
    replies: the hash slot and the shard to contact.
    """

    def __init__(self, slot: int, shard: int) -> None:
        super().__init__(f"{self.kind} {slot} {shard}")
        self.slot = slot
        self.shard = shard

    kind = "REDIRECT"


class MovedError(RedirectError):
    """``MOVED``: slot ownership changed durably; clients should update
    their routing table and retry at the named shard."""

    kind = "MOVED"


class AskError(RedirectError):
    """``ASK``: the key is mid-migration; retry *this one request* at the
    named importing shard, prefixed with ``ASKING``, without updating any
    routing tables."""

    kind = "ASK"


class RedirectLoopError(ClusterError):
    """A request was redirected more times than the client's cap --
    the cluster topology view never converged."""


# ---------------------------------------------------------------------------
# Tenancy layer
# ---------------------------------------------------------------------------


class TenancyError(ClusterError):
    """Base class for multi-tenant control-plane errors."""


class UnknownTenantError(TenancyError):
    """A request named a tenant the registry has never heard of.

    The message begins ``TENANTUNKNOWN`` so the RESP layer forwards it
    unprefixed (like redirects), letting clients match on the token.
    """


class TenantAccessError(TenancyError):
    """A request addressed a key outside the requesting tenant's
    namespace.  The message begins ``TENANTDENIED`` (see above)."""


class QuotaExceededError(TenancyError):
    """A tenant exhausted one of its quotas -- the ops/s token bucket,
    the key-count cap, or the byte budget.  The message begins
    ``QUOTAEXCEEDED`` so clients (and the open-loop driver) can tell a
    throttle from a genuine failure."""


# ---------------------------------------------------------------------------
# GDPR layer
# ---------------------------------------------------------------------------


class GDPRError(ReproError):
    """Base class for GDPR-layer errors."""


class AccessDeniedError(GDPRError):
    """The ACL engine denied the operation (GDPR Art. 25/32)."""


class PurposeViolationError(GDPRError):
    """The requested processing purpose is not whitelisted, or is
    blacklisted, for the record (GDPR Art. 5.1, Art. 21)."""


class LocationViolationError(GDPRError):
    """The record may not be placed in the requested region (Art. 46)."""


class RetentionViolationError(GDPRError):
    """A record would outlive its declared retention period (Art. 5.1e)."""


class UnknownSubjectError(GDPRError, KeyError):
    """No records exist for the referenced data subject."""


class AuditError(GDPRError):
    """The audit log rejected a record or failed verification."""


class ComplianceError(GDPRError):
    """A compliance assessment could not be completed."""
