"""Shared infrastructure: clocks, errors, hashing, histograms, RESP codec."""

from .clock import Clock, SimClock, Stopwatch, WallClock
from .errors import ReproError
from .histogram import LatencyHistogram

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "Stopwatch",
    "ReproError",
    "LatencyHistogram",
]
