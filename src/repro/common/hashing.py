"""Hashing, checksums, and deterministic key hashing used across the stack.

The AOF and snapshot files carry CRC-style integrity checksums; the audit
log chains SHA-256 digests; the YCSB scrambled-zipfian generator needs the
64-bit FNV-1a hash that the reference YCSB implementation uses.
"""

from __future__ import annotations

import hashlib
import zlib

# Constants for 64-bit FNV-1a, as used by YCSB's Utils.fnvhash64.
FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer, byte by byte (YCSB-compatible).

    YCSB hashes the 8 little-endian bytes of the record number to scramble
    the zipfian distribution across the keyspace.
    """
    h = FNV_OFFSET_BASIS_64
    v = value & _MASK_64
    for _ in range(8):
        octet = v & 0xFF
        v >>= 8
        h ^= octet
        h = (h * FNV_PRIME_64) & _MASK_64
    return h


def crc32_of(data: bytes, prior: int = 0) -> int:
    """CRC-32 checksum (zlib polynomial), chainable via ``prior``."""
    return zlib.crc32(data, prior) & 0xFFFFFFFF


def _make_crc16_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) if crc & 0x8000 else (crc << 1)
        table.append(crc & 0xFFFF)
    return tuple(table)


_CRC16_TABLE = _make_crc16_table()


def crc16_xmodem(data: bytes) -> int:
    """CRC-16/XMODEM (CCITT polynomial 0x1021, init 0) -- the checksum
    Redis Cluster feeds its key -> hash-slot mapping."""
    crc = 0
    for byte in data:
        crc = ((crc << 8) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]) \
            & 0xFFFF
    return crc


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_bytes(data: bytes) -> bytes:
    """Raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def chain_hash(previous_hex: str, payload: bytes) -> str:
    """Hash-chain step used by the tamper-evident audit log.

    The digest commits to both the previous record's digest and the new
    payload, so truncating, reordering, or editing any record invalidates
    every later link.
    """
    h = hashlib.sha256()
    h.update(previous_hex.encode("ascii"))
    h.update(b"|")
    h.update(payload)
    return h.hexdigest()


GENESIS_HASH = sha256_hex(b"repro-audit-genesis")
