"""REdis Serialization Protocol (RESP2) codec.

The kvstore's client and server speak RESP over the simulated network
channels, exactly as real Redis clients speak to a real Redis server (and as
stunnel proxies shuttle opaque RESP bytes).  Implementing the real wire
format keeps the TLS experiment honest: the bytes that cross the simulated
channel are the bytes a Redis deployment would ship.

Supported types::

    +OK\r\n                      simple string   -> SimpleString
    -ERR msg\r\n                 error           -> RespError
    :42\r\n                      integer         -> int
    $5\r\nhello\r\n              bulk string     -> bytes
    $-1\r\n                      null bulk       -> None
    *2\r\n...                    array           -> list
    *-1\r\n                      null array      -> None
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .errors import ProtocolError

CRLF = b"\r\n"


class SimpleString(str):
    """A RESP simple string ('+OK').  Distinct from bulk strings so that
    round-tripping preserves the wire type."""


class RespError(Exception):
    """A RESP protocol-level error value ('-ERR ...').

    It is both a decodable value and an exception, mirroring how client
    libraries surface server errors.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RespError) and other.message == self.message

    def __hash__(self) -> int:
        return hash(("RespError", self.message))


def encode(value: Any) -> bytes:
    """Encode a Python value into RESP bytes.

    ``str`` encodes as a bulk string (what clients send); use
    :class:`SimpleString` for '+' replies.  ``None`` encodes as the null
    bulk string.
    """
    if isinstance(value, SimpleString):
        if "\r" in value or "\n" in value:
            raise ProtocolError("simple strings cannot contain CR/LF")
        return b"+" + value.encode("utf-8") + CRLF
    if isinstance(value, RespError):
        if "\r" in value.message or "\n" in value.message:
            raise ProtocolError("errors cannot contain CR/LF")
        return b"-" + value.message.encode("utf-8") + CRLF
    if isinstance(value, bool):
        # Booleans are not a RESP2 type; encode as integers like Redis does.
        return b":" + (b"1" if value else b"0") + CRLF
    if isinstance(value, int):
        return b":" + str(value).encode("ascii") + CRLF
    if value is None:
        return b"$-1" + CRLF
    if isinstance(value, str):
        value = value.encode("utf-8")
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        return b"$" + str(len(data)).encode("ascii") + CRLF + data + CRLF
    if isinstance(value, (list, tuple)):
        parts = [b"*" + str(len(value)).encode("ascii") + CRLF]
        parts.extend(encode(item) for item in value)
        return b"".join(parts)
    raise ProtocolError(f"cannot encode type {type(value).__name__} as RESP")


def encode_command(*args: Any) -> bytes:
    """Encode a client command as an array of bulk strings."""
    out = [b"*" + str(len(args)).encode("ascii") + CRLF]
    for arg in args:
        if isinstance(arg, (int, float)):
            arg = str(arg)
        if isinstance(arg, str):
            arg = arg.encode("utf-8")
        if not isinstance(arg, (bytes, bytearray)):
            raise ProtocolError(
                f"command arguments must be scalar, got {type(arg).__name__}")
        data = bytes(arg)
        out.append(b"$" + str(len(data)).encode("ascii") + CRLF + data + CRLF)
    return b"".join(out)


class RespDecoder:
    """Incremental RESP decoder.

    Feed raw bytes with :meth:`feed`; pull complete values with
    :meth:`next_value`, which returns ``(found, value)`` so that ``None``
    (the null bulk string) is distinguishable from "need more bytes".
    """

    def __init__(self, max_bulk: int = 512 * 1024 * 1024) -> None:
        self._buffer = bytearray()
        self._max_bulk = max_bulk

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def next_value(self) -> Tuple[bool, Any]:
        result = self._parse(0)
        if result is None:
            return False, None
        value, consumed = result
        del self._buffer[:consumed]
        return True, value

    def drain(self) -> List[Any]:
        """Decode every complete value currently buffered."""
        values = []
        while True:
            found, value = self.next_value()
            if not found:
                return values
            values.append(value)

    # -- internals -----------------------------------------------------------

    def _find_line(self, start: int) -> Optional[Tuple[bytes, int]]:
        idx = self._buffer.find(CRLF, start)
        if idx < 0:
            return None
        return bytes(self._buffer[start:idx]), idx + 2

    def _parse(self, start: int) -> Optional[Tuple[Any, int]]:
        if len(self._buffer) <= start:
            return None
        marker = self._buffer[start:start + 1]
        line = self._find_line(start + 1)
        if line is None:
            return None
        payload, after = line
        if marker == b"+":
            return SimpleString(payload.decode("utf-8")), after
        if marker == b"-":
            return RespError(payload.decode("utf-8")), after
        if marker == b":":
            try:
                return int(payload), after
            except ValueError:
                raise ProtocolError(f"bad integer payload: {payload!r}")
        if marker == b"$":
            return self._parse_bulk(payload, after)
        if marker == b"*":
            return self._parse_array(payload, after)
        raise ProtocolError(f"unknown RESP type marker: {marker!r}")

    def _parse_bulk(self, header: bytes,
                    after: int) -> Optional[Tuple[Any, int]]:
        try:
            length = int(header)
        except ValueError:
            raise ProtocolError(f"bad bulk length: {header!r}")
        if length == -1:
            return None, after
        if length < 0 or length > self._max_bulk:
            raise ProtocolError(f"bulk length out of range: {length}")
        end = after + length
        if len(self._buffer) < end + 2:
            return None
        if bytes(self._buffer[end:end + 2]) != CRLF:
            raise ProtocolError("bulk string not terminated by CRLF")
        return bytes(self._buffer[after:end]), end + 2

    def _parse_array(self, header: bytes,
                     after: int) -> Optional[Tuple[Any, int]]:
        try:
            count = int(header)
        except ValueError:
            raise ProtocolError(f"bad array length: {header!r}")
        if count == -1:
            return None, after
        if count < 0:
            raise ProtocolError(f"array length out of range: {count}")
        items = []
        cursor = after
        for _ in range(count):
            parsed = self._parse(cursor)
            if parsed is None:
                return None
            item, cursor = parsed
            items.append(item)
        return items, cursor


def decode_all(data: bytes) -> List[Any]:
    """Decode a self-contained byte string into all its RESP values."""
    decoder = RespDecoder()
    decoder.feed(data)
    values = decoder.drain()
    if decoder.buffered:
        raise ProtocolError(f"{decoder.buffered} trailing bytes after decode")
    return values
