"""The relational (PostgreSQL-style) storage engine.

The paper's second system under test, behind the same
:class:`~repro.engine.base.StorageEngine` interface as the Redis-like
store: ordered heap with B-tree access paths, prepared-statement plan
cache, WAL durability on the device layer, GDPR metadata as indexed
columns, and a vacuum-style retention sweep.  See
:mod:`repro.sqlstore.engine`.
"""

from .engine import RelationalStore, SqlConfig, compliant_config
from .table import Row, Table, btree_depth
from .wal import WalWriter, checkpoint

__all__ = [
    "RelationalStore",
    "Row",
    "SqlConfig",
    "Table",
    "WalWriter",
    "btree_depth",
    "checkpoint",
    "compliant_config",
]
