"""Per-statement parse/plan costs with a prepared-statement cache.

A relational engine does work per *statement* that a command-dispatch
store never pays: the SQL text is parsed, the planner picks access
paths, and only then does the executor touch rows.  Real drivers
amortize this with prepared statements -- the first execution of each
statement shape pays parse + plan, later executions reuse the cached
plan.  :class:`PlanCache` reproduces exactly that economics on the
simulated clock, which is why the ``backends`` scenario shows the
relational engine's *fixed* per-operation overhead rather than a
parse-per-call caricature.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from ..common.clock import Clock


class PreparedStatement(NamedTuple):
    """A cached plan: the statement shape and its SQL flavor text."""

    name: str
    sql: str


class PlanCache:
    """Charges parse+plan once per statement shape, then serves hits.

    ``parse_cost`` / ``plan_cost`` are charged to ``clock`` on a miss;
    hits are free (the plan is a pointer lookup).  ``hits`` / ``misses``
    are exposed for tests and INFO-style reporting.
    """

    def __init__(self, clock: Clock, parse_cost: float = 0.0,
                 plan_cost: float = 0.0) -> None:
        self.clock = clock
        self.parse_cost = parse_cost
        self.plan_cost = plan_cost
        self._plans: Dict[str, PreparedStatement] = {}
        self.hits = 0
        self.misses = 0

    def prepare(self, name: str, sql: str) -> PreparedStatement:
        """The plan for statement shape ``name`` (charging on miss)."""
        plan = self._plans.get(name)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        cost = self.parse_cost + self.plan_cost
        if cost:
            self.clock.advance(cost)
        plan = PreparedStatement(name, sql)
        self._plans[name] = plan
        return plan

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        self._plans.clear()
