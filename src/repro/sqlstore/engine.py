"""RelationalStore: the PostgreSQL-style storage engine.

The paper implements its GDPR feature set in *two* systems -- Redis and
PostgreSQL -- and compares what compliance costs each.  This module is
the second system: a simulated relational engine behind the same
:class:`~repro.engine.base.StorageEngine` interface the key-value store
implements, so the GDPR layer, cluster sharding, replication groups,
slot migration, and the YCSB drivers run over it unchanged.

It keeps the command vocabulary at the interface (the driver translates
KV-shaped operations into prepared statements, as a Redis-compatibility
layer over a relational core would) while modelling what is structurally
different inside:

* **Ordered heap + B-tree access paths** (:mod:`.table`): point lookups
  descend a primary-key index whose depth grows with table size; range
  scans walk keys in order natively (no sorted-set shadow index).
* **Per-statement parse/plan cost with a plan cache** (:mod:`.planner`):
  the first execution of each statement shape pays parse + plan, later
  ones reuse the prepared plan -- the relational engine's fixed
  per-operation overhead, honestly amortized.
* **WAL-style durability** (:mod:`.wal`): committed mutations append
  logical statements to a write-ahead log on the device layer, with the
  same always/everysec/no fsync spectrum the AOF experiment measures
  (``synchronous_commit``, in Postgres terms) and ``wal_log_reads`` as
  the paper's statement-logging monitoring configuration.
* **GDPR metadata as indexed columns**: ``owner``/``purposes`` live in
  the row (the paper's schema change) behind
  :meth:`~RelationalStore.annotate_metadata`, and
  :meth:`~RelationalStore.keys_of_owner` answers subject queries from
  the secondary index instead of a sidecar.
* **Retention as an indexed sweep**: expiry is an ``expire_at`` column;
  a vacuum-style cycle deletes due rows via the deadline index
  (``DELETE FROM records WHERE expire_at <= now()``), with lazy
  reclamation on access, reasons reported exactly as the key-value
  engine reports them (``lazy-expire`` / ``active-expire``).

Deletion listeners, the effective-write stream (absolute ``PEXPIREAT``
translation included), DUMP/RESTORE payloads, and snapshots all follow
the engine contract, so replication links, slot migrators, and erasure
residual checks behave identically over either engine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace as dataclasses_replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..common.clock import Clock, SimClock
from ..common.errors import PersistenceError, WrongTypeError
from ..common.hashing import crc32_of
from ..common.resp import RespError, SimpleString
from ..device.append_log import AppendLog
from ..engine.base import EngineStats, StorageEngine, StoredRecord, \
    register_engine
from ..kvstore.commands import Session, glob_match, normalize_args, \
    parse_int
from ..kvstore.monitor import MonitorFeed
from ..kvstore.snapshot import dump_value, load_value
from .planner import PlanCache
from .table import Row, Table, btree_depth
from .wal import FsyncPolicy, WalWriter, checkpoint, replay_commands

OK = SimpleString("OK")
PONG = SimpleString("PONG")

SNAPSHOT_MAGIC = b"REPROSQL1"
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


@dataclass
class SqlConfig:
    """Tunables of the relational engine (the Postgres-shaped knobs).

    Cost fields default to zero so unit tests run on a free clock; the
    ``backends`` scenario installs calibrated values.  ``wal_fsync``
    spans the paper's durability spectrum (``synchronous_commit``);
    ``wal_log_reads`` is the statement-logging monitoring
    configuration; ``checkpoint_interval`` bounds how long deleted data
    may linger in the WAL (the section 4.3 concern).
    """

    hz: int = 10
    wal_enabled: bool = True
    wal_fsync: str = "everysec"
    wal_log_reads: bool = False
    wal_record_base_cost: float = 0.0
    wal_record_per_byte_cost: float = 0.0
    checkpoint_interval: float = 0.0     # seconds; 0 disables
    statement_cpu_cost: float = 0.0      # executor overhead per statement
    statement_parse_cost: float = 0.0    # plan-cache miss: parse
    statement_plan_cost: float = 0.0     # plan-cache miss: optimize
    index_node_cost: float = 0.0         # per B-tree node visited
    row_base_cost: float = 0.0           # per row touched
    row_per_byte_cost: float = 0.0       # per payload byte moved
    btree_fanout: int = 128
    seed: int = 0


class RelationalStore(StorageEngine):
    """A single-node relational engine (the "relational"
    :class:`~repro.engine.base.StorageEngine`)."""

    engine_name = "relational"
    supports_metadata_columns = True

    def __init__(self, config: Optional[SqlConfig] = None,
                 clock: Optional[Clock] = None,
                 wal_log: Optional[AppendLog] = None) -> None:
        super().__init__()
        self.config = config if config is not None else SqlConfig()
        self.clock = clock if clock is not None else SimClock()
        self.stats = EngineStats()
        self.monitor = MonitorFeed(clock=self.clock)
        self.table = Table()
        self.plans = PlanCache(self.clock,
                               parse_cost=self.config.statement_parse_cost,
                               plan_cost=self.config.statement_plan_cost)
        self.wal: Optional[WalWriter] = None
        self.aof_log: Optional[AppendLog] = None
        if self.config.wal_enabled:
            self.aof_log = wal_log if wal_log is not None \
                else AppendLog(clock=self.clock, name="records.wal")
            self.wal = WalWriter(
                self.aof_log, self.clock,
                policy=FsyncPolicy.parse(self.config.wal_fsync),
                log_reads=self.config.wal_log_reads,
                record_base_cost=self.config.wal_record_base_cost,
                record_per_byte_cost=self.config.wal_record_per_byte_cost)
        self._default_session = Session()
        self._loading = False
        self._last_vacuum = self.clock.now()
        self._last_checkpoint = self.clock.now()
        self.vacuum_runs = 0
        self.rewrites_completed = 0
        self.last_snapshot: Optional[bytes] = None
        self.last_snapshot_at: Optional[float] = None

    # -- cost accounting ---------------------------------------------------

    def _charge_statement(self, name: str, sql: str) -> None:
        self.plans.prepare(name, sql)
        if self.config.statement_cpu_cost:
            self.clock.advance(self.config.statement_cpu_cost)

    def _charge_index(self, traversals: int = 1) -> None:
        cost = self.config.index_node_cost
        if cost and traversals:
            depth = btree_depth(len(self.table), self.config.btree_fanout)
            self.clock.advance(cost * depth * traversals)

    def _charge_rows(self, count: int, nbytes: int = 0) -> None:
        cost = (self.config.row_base_cost * count
                + self.config.row_per_byte_cost * nbytes)
        if cost:
            self.clock.advance(cost)

    # -- command execution -------------------------------------------------

    def session(self, db_index: int = 0) -> Session:
        return Session(db_index)

    def execute(self, *args: Any, session: Optional[Session] = None) -> Any:
        """Execute one command against the relational core.

        The same entry point shape as the key-value engine: argv in,
        reply out, store exceptions raised as typed errors.  Each
        command runs as one (prepared) statement; effective writes are
        WAL-logged and fed to the write stream post-translation.
        """
        argv = normalize_args(args)
        if not argv:
            raise ValueError("empty command")
        name = argv[0].upper()
        handler = self._HANDLERS.get(name)
        if handler is None:
            raise RespError(
                "ERR unknown command "
                f"'{name.decode('ascii', 'replace')}'")
        if session is None:
            session = self._default_session
        if session.db_index != 0:
            raise RespError(
                "ERR the relational engine has a single database")
        start = self.clock.now()
        reply, records = handler(self, argv)
        self.stats.commands_processed += 1
        self.monitor.publish(start, 0, argv)
        if not self._loading:
            if self.wal is not None:
                if records:
                    for record in records:
                        self.wal.feed_command(0, record, is_write=True)
                else:
                    self.wal.feed_command(0, argv, is_write=False)
                self.wal.post_command()
            for record in records:
                self.notify_write(0, record)
        self.tick()
        return reply

    # -- row access with lazy expiry ---------------------------------------

    def _propagate_del(self, key: bytes) -> None:
        if self._loading:
            return
        if self.wal is not None:
            self.wal.feed_command(0, [b"DEL", key], is_write=True)
        self.notify_write(0, [b"DEL", key])

    def _delete_row(self, key: bytes, reason: str) -> Optional[Row]:
        row = self.table.delete(key)
        if row is not None:
            self.stats.deleted_keys += 1
            self.notify_deletion(0, key, reason, self.clock.now())
        return row

    def _reclaim_expired(self, key: bytes, reason: str) -> None:
        """Shared lazy/vacuum reclamation: delete + propagate the DEL."""
        self._delete_row(key, reason)
        self.stats.expired_keys += 1
        self._propagate_del(key)

    def demote_remove(self, key: bytes, db_index: int = 0) -> bool:
        """Tier-demotion removal (see the engine contract): deletion tap
        fires with reason ``"demote"``, the WAL records a DEL (the
        row's durable home moved to the cold device), and the
        effective-write stream stays silent so replicas keep their
        copy."""
        row = self.table.get(key)
        if row is None:
            return False
        self._delete_row(key, reason="demote")
        if self.wal is not None and not self._loading:
            self.wal.feed_command(0, [b"DEL", key], is_write=True)
            self.wal.post_command()
        return True

    def _live_row(self, key: bytes, for_read: bool = False) -> Optional[Row]:
        row = self.table.get(key)
        if row is not None and row.expire_at is not None \
                and row.expire_at <= self.clock.now():
            self._reclaim_expired(key, reason="lazy-expire")
            row = None
        if for_read:
            if row is None:
                self.stats.keyspace_misses += 1
            else:
                self.stats.keyspace_hits += 1
        return row

    # -- statement handlers ------------------------------------------------
    # Each returns (reply, records): ``records`` is the translated
    # effective-write stream (empty for reads / no-op writes).

    def _stmt_ping(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 1, name="PING", at_most=2)
        self._charge_statement("PING", "SELECT 1")
        if len(argv) == 2:
            return argv[1], []
        return PONG, []

    def _stmt_set(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 3, name="SET")
        self._charge_statement(
            "SET", "INSERT INTO records(key, value) VALUES ($1, $2) "
                   "ON CONFLICT (key) DO UPDATE "
                   "SET value = $2, expire_at = NULL")
        key, value = argv[1], argv[2]
        self._live_row(key)                  # lazy-reclaim an expired row
        self._charge_index()
        self._charge_rows(1, len(value))
        self.table.upsert(key, value)
        return OK, [list(argv[:3])]

    def _stmt_get(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="GET")
        self._charge_statement(
            "GET", "SELECT value FROM records WHERE key = $1")
        self._charge_index()
        row = self._live_row(argv[1], for_read=True)
        if row is None:
            return None, []
        if not isinstance(row.value, bytes):
            raise WrongTypeError(
                "WRONGTYPE Operation against a key holding the wrong "
                "kind of value")
        self._charge_rows(1, len(row.value))
        return row.value, []

    def _stmt_del(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="DEL", variadic=True)
        self._charge_statement(
            "DEL", "DELETE FROM records WHERE key = ANY($1)")
        removed = 0
        for key in argv[1:]:
            self._charge_index()
            if self._live_row(key) is None:
                continue
            row = self._delete_row(key, reason="del")
            self._charge_rows(1, row.payload_bytes() if row else 0)
            removed += 1
        return removed, [list(argv)] if removed else []

    def _stmt_exists(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="EXISTS", variadic=True)
        self._charge_statement(
            "EXISTS", "SELECT count(*) FROM records WHERE key = ANY($1)")
        count = 0
        for key in argv[1:]:
            self._charge_index()
            if self._live_row(key, for_read=True) is not None:
                count += 1
        return count, []

    def _expire_deadline(self, name: bytes, argv: List[bytes]) -> float:
        amount = parse_int(argv[2])
        now = self.clock.now()
        if name == b"EXPIRE":
            return now + amount
        if name == b"PEXPIRE":
            return now + amount / 1000.0
        if name == b"EXPIREAT":
            return float(amount)
        return amount / 1000.0               # PEXPIREAT

    def _stmt_expire(self, argv: List[bytes]) -> Tuple[Any, List]:
        name = argv[0].upper()
        self._check_arity(argv, 3, name=name.decode("ascii"))
        self._charge_statement(
            "EXPIRE", "UPDATE records SET expire_at = $2 WHERE key = $1")
        key = argv[1]
        self._charge_index()
        if self._live_row(key) is None:
            return 0, []
        deadline = self._expire_deadline(name, argv)
        if deadline <= self.clock.now():
            # TTL already in the past: the write is a delete.
            self._delete_row(key, reason="del")
            self._charge_rows(1)
            return 1, [[b"DEL", key]]
        self.table.set_expiry(key, deadline)
        self._charge_index()                 # expire_at index maintenance
        self._charge_rows(1)
        millis = str(int(deadline * 1000)).encode("ascii")
        return 1, [[b"PEXPIREAT", key, millis]]

    def _stmt_ttl(self, argv: List[bytes]) -> Tuple[Any, List]:
        name = argv[0].upper()
        self._check_arity(argv, 2, name=name.decode("ascii"))
        self._charge_statement(
            "TTL", "SELECT expire_at FROM records WHERE key = $1")
        self._charge_index()
        row = self._live_row(argv[1], for_read=True)
        if row is None:
            return -2, []
        if row.expire_at is None:
            return -1, []
        remaining = row.expire_at - self.clock.now()
        if name == b"PTTL":
            return int(round(remaining * 1000)), []
        return int(round(remaining)), []

    def _stmt_persist(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="PERSIST")
        self._charge_statement(
            "PERSIST",
            "UPDATE records SET expire_at = NULL WHERE key = $1")
        self._charge_index()
        row = self._live_row(argv[1])
        if row is None or not self.table.clear_expiry(argv[1]):
            return 0, []
        self._charge_rows(1)
        return 1, [list(argv)]

    def _wide_row(self, key: bytes, create: bool) -> Optional[Row]:
        row = self._live_row(key)
        if row is None:
            if not create:
                return None
            row = self.table.upsert(key, {})
            return row
        if isinstance(row.value, bytes):
            raise WrongTypeError(
                "WRONGTYPE Operation against a key holding the wrong "
                "kind of value")
        return row

    def _stmt_hset(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 4, name="HSET", variadic=True)
        if len(argv) % 2 != 0:
            raise RespError(
                "ERR wrong number of arguments for 'HSET' command")
        self._charge_statement(
            "HSET", "INSERT INTO records(key, cols) VALUES ($1, $2) "
                    "ON CONFLICT (key) DO UPDATE SET cols = "
                    "records.cols || $2")
        self._charge_index()
        row = self._wide_row(argv[1], create=True)
        added = 0
        nbytes = 0
        for index in range(2, len(argv), 2):
            field, value = argv[index], argv[index + 1]
            if field not in row.value:
                added += 1
            row.value[field] = value
            nbytes += len(field) + len(value)
        self._charge_rows(1, nbytes)
        return added, [list(argv)]

    def _stmt_hget(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 3, name="HGET")
        self._charge_statement(
            "HGET", "SELECT cols -> $2 FROM records WHERE key = $1")
        self._charge_index()
        row = self._wide_row(argv[1], create=False)
        if row is None:
            self.stats.keyspace_misses += 1
            return None, []
        self.stats.keyspace_hits += 1
        value = row.value.get(argv[2])
        self._charge_rows(1, len(value) if value else 0)
        return value, []

    def _stmt_hmget(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 3, name="HMGET", variadic=True)
        self._charge_statement(
            "HMGET", "SELECT cols -> ANY($2) FROM records WHERE key = $1")
        self._charge_index()
        row = self._wide_row(argv[1], create=False)
        if row is None:
            self.stats.keyspace_misses += 1
            return [None] * (len(argv) - 2), []
        self.stats.keyspace_hits += 1
        out = [row.value.get(field) for field in argv[2:]]
        self._charge_rows(1, sum(len(v) for v in out if v))
        return out, []

    def _stmt_hgetall(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="HGETALL")
        self._charge_statement(
            "HGETALL", "SELECT cols FROM records WHERE key = $1")
        self._charge_index()
        row = self._wide_row(argv[1], create=False)
        if row is None:
            self.stats.keyspace_misses += 1
            return [], []
        self.stats.keyspace_hits += 1
        flat: List[bytes] = []
        for field in sorted(row.value):
            flat.append(field)
            flat.append(row.value[field])
        self._charge_rows(1, row.payload_bytes())
        return flat, []

    def _stmt_hlen(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="HLEN")
        self._charge_statement(
            "HLEN", "SELECT jsonb_array_length(cols) FROM records "
                    "WHERE key = $1")
        self._charge_index()
        row = self._wide_row(argv[1], create=False)
        return (len(row.value) if row is not None else 0), []

    def _stmt_hdel(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 3, name="HDEL", variadic=True)
        self._charge_statement(
            "HDEL", "UPDATE records SET cols = cols - ANY($2) "
                    "WHERE key = $1")
        self._charge_index()
        row = self._wide_row(argv[1], create=False)
        if row is None:
            return 0, []
        removed = 0
        for field in argv[2:]:
            if field in row.value:
                del row.value[field]
                removed += 1
        self._charge_rows(1)
        if not row.value:
            self._delete_row(argv[1], reason="del")
        return removed, [list(argv)] if removed else []

    def _stmt_keys(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="KEYS")
        self._charge_statement(
            "KEYS", "SELECT key FROM records WHERE key LIKE $1 "
                    "ORDER BY key")
        pattern = argv[1]
        now = self.clock.now()
        out = []
        for row in self.table.rows():
            if row.expire_at is not None and row.expire_at <= now:
                continue
            if glob_match(pattern, row.key):
                out.append(row.key)
        self._charge_rows(len(self.table))
        return out, []

    def _stmt_dbsize(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 1, name="DBSIZE")
        self._charge_statement(
            "DBSIZE", "SELECT count(*) FROM records")
        self._charge_index()
        return len(self.table), []

    def _stmt_flush(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 1, name="FLUSH")
        self._charge_statement("FLUSH", "TRUNCATE records")
        dropped = self.table.clear()
        self.stats.deleted_keys += dropped
        self._charge_rows(dropped)
        return OK, [list(argv)]

    def _stmt_range(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 3, name="RANGE")
        self._charge_statement(
            "RANGE", "SELECT key FROM records WHERE key >= $1 "
                     "ORDER BY key LIMIT $2")
        count = parse_int(argv[2])
        if count < 0:
            raise RespError("ERR LIMIT must be >= 0")
        self._charge_index()
        now = self.clock.now()
        out: List[bytes] = []
        for key in self.table.iter_from(argv[1]):
            if len(out) >= count:
                break
            row = self.table.get(key)
            if row is not None and row.expire_at is not None \
                    and row.expire_at <= now:
                continue            # dead tuple: the scan walks past it
            out.append(key)
        self._charge_rows(len(out))
        return out, []

    def _stmt_dump(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 2, name="DUMP")
        self._charge_statement(
            "DUMP", "SELECT row_image FROM records WHERE key = $1")
        self._charge_index()
        row = self._live_row(argv[1], for_read=True)
        if row is None:
            return None, []
        self._charge_rows(1, row.payload_bytes())
        return dump_value(row.value), []

    def _stmt_restore(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 4, name="RESTORE", variadic=True)
        self._charge_statement(
            "RESTORE", "INSERT INTO records(key, row_image) "
                       "VALUES ($1, $3)")
        key, ttl_ms = argv[1], parse_int(argv[2])
        if ttl_ms < 0:
            raise RespError("ERR Invalid TTL value, must be >= 0")
        replace_flag = False
        for option in argv[4:]:
            if option.upper() == b"REPLACE":
                replace_flag = True
            else:
                raise RespError("ERR syntax error")
        if self._live_row(key) is not None:
            if not replace_flag:
                raise RespError("BUSYKEY Target key name already exists.")
            self._delete_row(key, reason="del")
        from ..common.errors import CorruptionError
        try:
            value = load_value(argv[3])
        except CorruptionError:
            raise RespError(
                "ERR DUMP payload version or checksum are wrong")
        if not isinstance(value, (bytes, dict)):
            raise WrongTypeError(
                "WRONGTYPE the relational engine stores value and "
                "wide-column rows only")
        self._charge_index()
        self._charge_rows(1, len(argv[3]))
        self.table.upsert(key, value)
        records = [[b"RESTORE", key, b"0", argv[3], b"REPLACE"]]
        if ttl_ms > 0:
            deadline = self.clock.now() + ttl_ms / 1000.0
            self.table.set_expiry(key, deadline)
            self._charge_index()
            millis = str(int(deadline * 1000)).encode("ascii")
            records.append([b"PEXPIREAT", key, millis])
        return OK, records

    def _stmt_gdprmeta(self, argv: List[bytes]) -> Tuple[Any, List]:
        self._check_arity(argv, 4, name="GDPRMETA")
        self._charge_statement(
            "GDPRMETA", "UPDATE records SET owner = $2, purposes = $3 "
                        "WHERE key = $1")
        self._charge_index(traversals=2)     # PK descent + owner index
        if self._live_row(argv[1]) is None:
            return 0, []
        self.table.set_metadata(argv[1],
                                argv[2].decode("utf-8", "replace"),
                                argv[3].decode("utf-8", "replace"))
        self._charge_rows(1)
        return 1, [list(argv)]

    def _stmt_select(self, argv: List[bytes]) -> Tuple[Any, List]:
        raise RespError(
            "ERR the relational engine has a single database; "
            "SELECT is not supported")

    @staticmethod
    def _check_arity(argv: List[bytes], expected: int, name: str,
                     variadic: bool = False,
                     at_most: Optional[int] = None) -> None:
        if len(argv) < expected or (not variadic and at_most is None
                                    and len(argv) != expected) \
                or (at_most is not None and len(argv) > at_most):
            raise RespError(
                f"ERR wrong number of arguments for '{name}' command")

    _HANDLERS: Dict[bytes, Callable] = {
        b"PING": _stmt_ping,
        b"SET": _stmt_set,
        b"GET": _stmt_get,
        b"DEL": _stmt_del,
        b"UNLINK": _stmt_del,
        b"EXISTS": _stmt_exists,
        b"EXPIRE": _stmt_expire,
        b"PEXPIRE": _stmt_expire,
        b"EXPIREAT": _stmt_expire,
        b"PEXPIREAT": _stmt_expire,
        b"TTL": _stmt_ttl,
        b"PTTL": _stmt_ttl,
        b"PERSIST": _stmt_persist,
        b"HSET": _stmt_hset,
        b"HMSET": _stmt_hset,
        b"HGET": _stmt_hget,
        b"HMGET": _stmt_hmget,
        b"HGETALL": _stmt_hgetall,
        b"HLEN": _stmt_hlen,
        b"HDEL": _stmt_hdel,
        b"KEYS": _stmt_keys,
        b"DBSIZE": _stmt_dbsize,
        b"FLUSHALL": _stmt_flush,
        b"FLUSHDB": _stmt_flush,
        b"RANGE": _stmt_range,
        b"DUMP": _stmt_dump,
        b"RESTORE": _stmt_restore,
        b"GDPRMETA": _stmt_gdprmeta,
        b"SELECT": _stmt_select,
    }

    # -- background work (vacuum + WAL fsync + checkpoint) -----------------

    def tick(self) -> None:
        """Run due background work: WAL group fsync, the retention
        vacuum, and the periodic checkpoint."""
        now = self.clock.now()
        if self.wal is not None:
            self.wal.tick(now)
        if now - self._last_vacuum >= 1.0 / self.config.hz:
            self._last_vacuum = now
            self.vacuum(now)
        interval = self.config.checkpoint_interval
        if interval and self.aof_log is not None \
                and now - self._last_checkpoint >= interval:
            self.rewrite_aof()

    def vacuum(self, now: Optional[float] = None) -> int:
        """One retention sweep: delete rows whose ``expire_at`` passed,
        found via the deadline index; returns rows reclaimed."""
        if now is None:
            now = self.clock.now()
        due = self.table.due_rows(now)
        if due:
            self._charge_statement(
                "VACUUM", "DELETE FROM records WHERE expire_at <= now()")
            self._charge_index()
            self._charge_rows(len(due))
        for key in due:
            self._reclaim_expired(key, reason="active-expire")
        if due:
            self.vacuum_runs += 1
            if self.wal is not None:
                self.wal.post_command()
        return len(due)

    # -- engine interface: keyspace views ----------------------------------

    def live_keys(self, db_index: int = 0) -> List[bytes]:
        now = self.clock.now()
        return [row.key for row in self.table.rows()
                if row.expire_at is None or row.expire_at > now]

    def has_live_key(self, key: bytes, db_index: int = 0) -> bool:
        row = self.table.get(key)
        return (row is not None
                and (row.expire_at is None
                     or row.expire_at > self.clock.now()))

    def scan_records(self, db_index: int = 0):
        now = self.clock.now()
        for row in self.table.rows():
            if row.expire_at is not None and row.expire_at <= now:
                continue
            yield StoredRecord(row.key, row.value, row.expire_at)

    def key_count(self, db_index: int = 0) -> int:
        return len(self.table)

    # -- GDPR metadata columns ---------------------------------------------

    def annotate_metadata(self, key: str, owner: str,
                          purposes: Iterable[str]) -> None:
        """UPDATE the row's indexed metadata columns (the paper's
        relational schema approach; one extra statement per put)."""
        self.execute("GDPRMETA", key, owner, ",".join(sorted(purposes)))

    def keys_of_owner(self, owner: str) -> List[str]:
        """Subject lookup straight off the owner secondary index."""
        self._charge_statement(
            "SELECT_BY_OWNER",
            "SELECT key FROM records WHERE owner = $1 ORDER BY key")
        self._charge_index()
        now = self.clock.now()
        out: List[str] = []
        for key in self.table.keys_of_owner(owner):
            row = self.table.get(key)
            if row is not None and row.expire_at is not None \
                    and row.expire_at <= now:
                continue
            out.append(key.decode("utf-8", "replace"))
        self._charge_rows(len(out))
        return out

    # -- durability --------------------------------------------------------

    def save_snapshot(self) -> bytes:
        """Point-in-time base backup: every row with its expiry and
        metadata columns, checksummed."""
        out: List[bytes] = [SNAPSHOT_MAGIC, _U32.pack(len(self.table))]
        for row in self.table.rows():
            for blob in (row.key, dump_value(row.value)):
                out.append(_U32.pack(len(blob)))
                out.append(blob)
            flags = (1 if row.expire_at is not None else 0) \
                | (2 if row.owner is not None else 0)
            out.append(bytes([flags]))
            if row.expire_at is not None:
                out.append(_F64.pack(row.expire_at))
            if row.owner is not None:
                owner = row.owner.encode("utf-8")
                purposes = row.purposes.encode("utf-8")
                out.append(_U32.pack(len(owner)))
                out.append(owner)
                out.append(_U32.pack(len(purposes)))
                out.append(purposes)
        body = b"".join(out)
        data = body + _U32.pack(crc32_of(body))
        self.last_snapshot = data
        self.last_snapshot_at = self.clock.now()
        return data

    def load_snapshot(self, data: bytes) -> int:
        from ..common.errors import CorruptionError

        if len(data) < len(SNAPSHOT_MAGIC) + 8 \
                or not data.startswith(SNAPSHOT_MAGIC):
            raise CorruptionError("not a relational snapshot")
        body, crc = data[:-4], _U32.unpack(data[-4:])[0]
        if crc32_of(body) != crc:
            raise CorruptionError("relational snapshot checksum mismatch")
        pos = len(SNAPSHOT_MAGIC)

        def take(n: int) -> bytes:
            nonlocal pos
            if pos + n > len(body):
                raise CorruptionError("relational snapshot truncated")
            chunk = body[pos:pos + n]
            pos += n
            return chunk

        count = _U32.unpack(take(4))[0]
        self.table.clear()
        for _ in range(count):
            key = take(_U32.unpack(take(4))[0])
            value = load_value(take(_U32.unpack(take(4))[0]))
            if not isinstance(value, (bytes, dict)):
                raise CorruptionError(
                    "relational snapshot row has unsupported shape")
            flags = take(1)[0]
            self.table.upsert(key, value)
            if flags & 1:
                self.table.set_expiry(key, _F64.unpack(take(8))[0])
            if flags & 2:
                owner = take(_U32.unpack(take(4))[0]).decode("utf-8")
                purposes = take(_U32.unpack(take(4))[0]).decode("utf-8")
                self.table.set_metadata(key, owner, purposes)
        return count

    def replay_aof(self, data: Optional[bytes] = None,
                   tolerate_truncated_tail: bool = True) -> int:
        """Crash recovery: re-execute the WAL's logical statements."""
        if data is None:
            if self.aof_log is None:
                raise PersistenceError("the WAL is not enabled")
            data = self.aof_log.read_durable()
        commands = replay_commands(
            data, tolerate_truncated_tail=tolerate_truncated_tail)
        session = Session()
        self._loading = True
        try:
            for argv in commands:
                self.execute(*argv, session=session)
        finally:
            self._loading = False
        return len(commands)

    def rewrite_aof(self) -> int:
        """WAL checkpoint: compact the log to current live state."""
        if self.aof_log is None:
            raise PersistenceError("the WAL is not enabled")
        size = checkpoint(self)
        self._last_checkpoint = self.clock.now()
        self.rewrites_completed += 1
        return size

    # -- replication -------------------------------------------------------

    def spawn_replica(self, clock: Optional[Clock] = None
                      ) -> "RelationalStore":
        """A zero-cost relational replica (no WAL of its own), per the
        engine contract."""
        return RelationalStore(
            SqlConfig(hz=self.config.hz, wal_enabled=False),
            clock=clock if clock is not None else self.clock)

    # -- introspection -----------------------------------------------------

    def info_text(self) -> str:
        lines = [
            "# Server",
            "engine:relational",
            f"sim_time:{self.clock.now():.6f}",
            "",
            "# Persistence",
            f"wal_enabled:{1 if self.wal is not None else 0}",
            f"wal_checkpoints:{self.rewrites_completed}",
            f"wal_pending_bytes:"
            f"{self.wal.unsynced_bytes() if self.wal else 0}",
            "",
            "# Planner",
            f"plan_cache_size:{len(self.plans)}",
            f"plan_cache_hits:{self.plans.hits}",
            f"plan_cache_misses:{self.plans.misses}",
            "",
            "# Stats",
            f"total_statements_processed:{self.stats.commands_processed}",
            f"expired_rows:{self.stats.expired_keys}",
            f"deleted_rows:{self.stats.deleted_keys}",
            f"vacuum_runs:{self.vacuum_runs}",
            "",
            "# Keyspace",
            f"records:rows={len(self.table)}",
        ]
        return "\n".join(lines) + "\n"


def compliant_config(seed: int = 0, **overrides) -> SqlConfig:
    """The GDPR-monitoring WAL configuration (statement logging of
    reads, everysec commit), mirroring the key-value engine's
    ``aof_log_reads`` setup; cost fields still default to zero."""
    config = SqlConfig(wal_enabled=True, wal_fsync="everysec",
                       wal_log_reads=True, seed=seed)
    return dataclasses_replace(config, **overrides)


register_engine(RelationalStore.engine_name, RelationalStore)
