"""WAL-style durability for the relational engine.

PostgreSQL's durability story is a write-ahead log: every committed
mutation is appended to the WAL before it is acknowledged, fsync policy
(``synchronous_commit``) decides when the log bytes become durable, and
checkpoints bound replay work by rewriting the log against current
state.  Structurally that is the same three-frontier append log the
Redis AOF uses, so :class:`WalWriter` deliberately *reuses* the AOF
mechanics (:class:`~repro.kvstore.aof.AofWriter` over a device-layer
:class:`~repro.device.append_log.AppendLog`) with relational naming:

* records are logical statements in RESP frames -- one vocabulary for
  both engines' logs, so cross-engine tooling (the Art. 17 residual
  check ``contains_key``, crash replay) works on either;
* ``wal_fsync`` maps onto the same always/everysec/no spectrum the
  paper measures for the AOF (``synchronous_commit = on / off`` plus a
  group-commit window);
* ``log_reads=True`` is the paper's monitoring configuration for the
  relational system: statement logging of reads as well as writes.

:func:`checkpoint` is the WAL's compaction: rewrite the log to exactly
the live rows (payload, expiry column, GDPR metadata columns), dropping
every trace of deleted data -- the erasure-compaction requirement the
paper raises for logs in section 4.3.
"""

from __future__ import annotations

from typing import List

from ..common.resp import encode_command
from ..kvstore.aof import AofWriter, FsyncPolicy, replay_commands  # noqa: F401

__all__ = ["WalWriter", "FsyncPolicy", "replay_commands", "checkpoint"]


class WalWriter(AofWriter):
    """The relational engine's write-ahead log writer.

    Identical mechanics to the AOF writer (that is the point -- the
    durability spectrum under comparison is the same mechanism on both
    engines); the subclass exists so engine code and reports speak WAL.
    """


def checkpoint(engine) -> int:
    """Rewrite the engine's WAL to current live state; returns the new
    log size in bytes.

    One statement per live row (plus its expiry deadline and GDPR
    metadata columns, when present), replacing the log atomically --
    deleted rows, and any erased subject's statements, do not survive.
    """
    log = engine.aof_log
    if log is None:
        raise ValueError("the engine has no WAL attached")
    chunks: List[bytes] = []
    for row in engine.table.rows():
        if isinstance(row.value, bytes):
            chunks.append(encode_command(b"SET", row.key, row.value))
        else:
            args: List[bytes] = [b"HSET", row.key]
            for name in sorted(row.value):
                args.append(name)
                args.append(row.value[name])
            chunks.append(encode_command(*args))
        if row.expire_at is not None:
            millis = str(int(row.expire_at * 1000)).encode("ascii")
            chunks.append(encode_command(b"PEXPIREAT", row.key, millis))
        if row.owner is not None:
            chunks.append(encode_command(
                b"GDPRMETA", row.key, row.owner.encode("utf-8"),
                row.purposes.encode("utf-8")))
    data = b"".join(chunks)
    log.replace(data)
    return len(data)
