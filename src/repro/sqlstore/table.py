"""The relational engine's storage structures: ordered heap + indexes.

PostgreSQL stores a table as a heap with a B-tree primary-key index and
optional secondary indexes.  This module models the *access-path shape*
of that design (what gets traversed, in what order, how deep) while the
engine charges the costs:

* :class:`Table` keeps rows reachable two ways: a dict for O(1) point
  access and a **sorted key list** standing in for the primary-key
  B-tree, so range scans (`WHERE key >= x ORDER BY key LIMIT n`) walk
  keys in order without any shadow index -- the structural advantage a
  relational engine has over a hash-table store for YCSB workload E.
* Secondary indexes: an ``expire_at`` index (deadline-ordered heap, the
  retention sweep's access path) and an ``owner`` index over the GDPR
  metadata columns (the paper's schema change: metadata lives in the
  row, indexed, rather than in a sidecar).

:func:`btree_depth` is the cost model's handle on index height: the
number of node visits a point lookup pays, growing with ``log_fanout``
of the table size.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

# A row's payload: a single value column (bytes, from SET) or a wide row
# of named columns (dict, from HSET) -- the two shapes YCSB drives.
RowValue = Union[bytes, Dict[bytes, bytes]]


def btree_depth(row_count: int, fanout: int) -> int:
    """Node visits for one index descent: root -> leaf.

    Depth 1 for an empty/tiny table, growing logarithmically -- the
    shape that makes relational point lookups slow down (slightly) as
    tables grow where a hash table would not.
    """
    if row_count < 2:
        return 1
    return 1 + math.ceil(math.log(row_count, max(2, fanout)))


class Row:
    """One heap tuple: payload plus the GDPR metadata columns."""

    __slots__ = ("key", "value", "expire_at", "owner", "purposes")

    def __init__(self, key: bytes, value: RowValue,
                 expire_at: Optional[float] = None,
                 owner: Optional[str] = None,
                 purposes: str = "") -> None:
        self.key = key
        self.value = value
        self.expire_at = expire_at
        self.owner = owner
        self.purposes = purposes

    def payload_bytes(self) -> int:
        if isinstance(self.value, bytes):
            return len(self.value)
        return sum(len(name) + len(col) for name, col in self.value.items())


class Table:
    """The ``records`` table: ordered heap, expiry index, owner index."""

    def __init__(self) -> None:
        self._rows: Dict[bytes, Row] = {}
        self._keys: List[bytes] = []          # sorted: the PK B-tree
        self._by_owner: Dict[str, Set[bytes]] = {}
        self._expiry_heap: List[Tuple[float, bytes]] = []

    # -- heap maintenance --------------------------------------------------

    def get(self, key: bytes) -> Optional[Row]:
        return self._rows.get(key)

    def upsert(self, key: bytes, value: RowValue) -> Row:
        """Insert or replace the payload columns of ``key``'s row.

        A replacement clears the expiry (SET semantics: overwrite drops
        the TTL) but keeps the metadata columns untouched only when the
        row survives -- a fresh insert starts with NULL metadata.
        """
        row = self._rows.get(key)
        if row is None:
            row = Row(key, value)
            self._rows[key] = row
            bisect.insort(self._keys, key)
        else:
            row.value = value
            row.expire_at = None
        return row

    def delete(self, key: bytes) -> Optional[Row]:
        row = self._rows.pop(key, None)
        if row is None:
            return None
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            del self._keys[index]
        if row.owner is not None:
            self._index_owner(row.owner, key, remove=True)
        # Expiry heap entries are lazily invalidated on pop.
        return row

    def clear(self) -> int:
        count = len(self._rows)
        self._rows.clear()
        self._keys.clear()
        self._by_owner.clear()
        self._expiry_heap.clear()
        return count

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: bytes) -> bool:
        return key in self._rows

    def keys(self) -> List[bytes]:
        """All keys in primary-key order (the B-tree's leaf walk)."""
        return list(self._keys)

    # -- expiry column / index ---------------------------------------------

    def set_expiry(self, key: bytes, expire_at: float) -> None:
        row = self._rows.get(key)
        if row is None:
            raise KeyError(key)
        row.expire_at = expire_at
        heapq.heappush(self._expiry_heap, (expire_at, key))

    def clear_expiry(self, key: bytes) -> bool:
        row = self._rows.get(key)
        if row is None or row.expire_at is None:
            return False
        row.expire_at = None
        return True

    def due_rows(self, now: float) -> List[bytes]:
        """Keys whose ``expire_at`` column has passed, in deadline
        order -- one index range scan of the retention sweep."""
        due: List[bytes] = []
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            deadline, key = heapq.heappop(self._expiry_heap)
            row = self._rows.get(key)
            if row is not None and row.expire_at == deadline:
                due.append(key)
        return due

    # -- owner (GDPR metadata) index ---------------------------------------

    def set_metadata(self, key: bytes, owner: str, purposes: str) -> bool:
        row = self._rows.get(key)
        if row is None:
            return False
        if row.owner is not None and row.owner != owner:
            self._index_owner(row.owner, key, remove=True)
        if row.owner != owner:
            self._index_owner(owner, key, remove=False)
        row.owner = owner
        row.purposes = purposes
        return True

    def _index_owner(self, owner: str, key: bytes, remove: bool) -> None:
        if remove:
            bucket = self._by_owner.get(owner)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_owner[owner]
        else:
            self._by_owner.setdefault(owner, set()).add(key)

    def keys_of_owner(self, owner: str) -> List[bytes]:
        return sorted(self._by_owner.get(owner, ()))

    # -- range access (the ordered heap's reason to exist) -----------------

    def iter_from(self, start_key: bytes) -> Iterator[bytes]:
        """Keys ``>= start_key`` in primary-key order (the B-tree leaf
        walk a LIMIT query resumes through filtered-out tuples)."""
        for index in range(bisect.bisect_left(self._keys, start_key),
                           len(self._keys)):
            yield self._keys[index]

    def rows(self) -> Iterator[Row]:
        """All rows in primary-key order."""
        for key in self._keys:
            yield self._rows[key]
