"""The YCSB client loop: load and run phases, latency and throughput.

The runner is closed-loop, like one YCSB thread: it issues the next
operation when the previous one completes.  Latency is read from the
store's clock, so under a :class:`~repro.common.clock.SimClock` the
reported throughput is *simulated* throughput -- deterministic and
host-independent (see DESIGN.md section 6).  The open-loop counterpart
(admission at a configured arrival rate, queueing delay measured apart
from service time) lives in :mod:`repro.ycsb.openloop`.

Nothing here touches wall time: every random stream is derived from one
explicit seeded RNG and all timestamps come from the injected clock, so
two runs with the same seed are byte-for-byte identical under a
:class:`~repro.common.clock.SimClock`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..common.clock import Clock
from ..common.histogram import LatencyHistogram
from .adapters import StorageAdapter
from .distributions import (
    CounterGenerator,
    DiscreteGenerator,
    NumberGenerator,
    ScrambledZipfianGenerator,
    SkewedLatestGenerator,
    UniformGenerator,
)
from .generator import FieldGenerator, build_key_name
from .workloads import WorkloadSpec


def make_chooser(spec: WorkloadSpec, insert_counter: CounterGenerator,
                 rng: random.Random) -> NumberGenerator:
    """The key chooser a workload spec calls for, on an explicit RNG.

    Shared by the closed-loop runner and the open-loop driver so the
    request-distribution wiring cannot drift between the two.
    """
    dist = spec.request_distribution
    if dist == "uniform":
        return UniformGenerator(0, spec.record_count - 1, rng=rng)
    if dist == "latest":
        return SkewedLatestGenerator(insert_counter, rng=rng)
    return ScrambledZipfianGenerator(0, spec.record_count - 1, rng=rng)


@dataclass
class RunReport:
    """What YCSB prints per phase: overall + per-operation summaries."""

    phase: str
    operations: int
    sim_elapsed: float
    # Retained for report compatibility; the runner no longer reads the
    # host's clock (wall time has no place in a deterministic run).
    wall_elapsed: float = 0.0
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)
    failures: int = 0

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.sim_elapsed <= 0:
            return 0.0
        return self.operations / self.sim_elapsed

    def summary(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "operations": self.operations,
            "throughput_ops_per_s": round(self.throughput, 1),
            "sim_elapsed_s": self.sim_elapsed,
            "ops": {op: hist.summary()
                    for op, hist in self.histograms.items()},
            "failures": self.failures,
        }


class WorkloadRunner:
    """Executes one workload spec against one adapter."""

    def __init__(self, adapter: StorageAdapter, spec: WorkloadSpec,
                 clock: Clock, seed: int = 42,
                 insert_counter: Optional[CounterGenerator] = None) -> None:
        self.adapter = adapter
        self.spec = spec
        self.clock = clock
        # One root RNG; every stream (field payloads, key chooser, op
        # mix, scan lengths) is derived from it, so a single seed pins
        # the whole run.
        self._rng = random.Random(seed)
        self.fields = FieldGenerator(spec.field_count, spec.field_length,
                                     seed=seed)
        # Key ids [0, insert_counter) exist; transactional inserts extend
        # it.  Pass a prior runner's counter to chain run phases over one
        # loaded dataset (the Figure 1 sequence).
        self.insert_counter = (insert_counter if insert_counter is not None
                               else CounterGenerator(spec.record_count))
        self._chooser = self._make_chooser()
        self._op_mix = DiscreteGenerator(
            list(spec.operation_mix()),
            rng=random.Random(self._rng.randrange(1 << 30)))
        self._scan_length = UniformGenerator(
            1, spec.max_scan_length,
            rng=random.Random(self._rng.randrange(1 << 30)))

    def _make_chooser(self) -> NumberGenerator:
        return make_chooser(self.spec, self.insert_counter,
                            random.Random(self._rng.randrange(1 << 30)))

    def _next_existing_key(self) -> str:
        keynum = self._chooser.next_value()
        # Guard against choosers referencing not-yet-inserted ids.
        keynum = min(keynum, self.insert_counter.last_value())
        return build_key_name(max(keynum, 0))

    # -- phases -----------------------------------------------------------------

    def load(self) -> RunReport:
        """Insert ``record_count`` records (the Load-* bars of Figure 1)."""
        sim_start = self.clock.now()
        hist = LatencyHistogram()
        for keynum in range(self.spec.record_count):
            began = self.clock.now()
            self.adapter.insert(build_key_name(keynum),
                                self.fields.build_values())
            hist.record(self.clock.now() - began)
        self.adapter.flush()
        return RunReport(
            phase=f"Load-{self.spec.name}",
            operations=self.spec.record_count,
            sim_elapsed=self.clock.now() - sim_start,
            histograms={"insert": hist})

    def run(self, operation_count: Optional[int] = None) -> RunReport:
        """Execute the transaction phase."""
        total = (operation_count if operation_count is not None
                 else self.spec.operation_count)
        sim_start = self.clock.now()
        histograms: Dict[str, LatencyHistogram] = {}
        failures = 0
        for _ in range(total):
            op = self._op_mix.next_value()
            began = self.clock.now()
            try:
                self._execute(op)
            except KeyError:
                failures += 1
            histograms.setdefault(op, LatencyHistogram()).record(
                self.clock.now() - began)
        self.adapter.flush()
        return RunReport(
            phase=self.spec.name, operations=total,
            sim_elapsed=self.clock.now() - sim_start,
            histograms=histograms, failures=failures)

    def _execute(self, op: str) -> None:
        if op == "read":
            fields = None if self.spec.read_all_fields \
                else [self.fields.random_field()]
            self.adapter.read(self._next_existing_key(), fields)
        elif op == "update":
            self.adapter.update(self._next_existing_key(),
                                self.fields.build_update())
        elif op == "insert":
            keynum = self.insert_counter.next_value()
            self.adapter.insert(build_key_name(keynum),
                                self.fields.build_values())
        elif op == "scan":
            self.adapter.scan(self._next_existing_key(),
                              self._scan_length.next_value())
        elif op == "rmw":
            key = self._next_existing_key()
            self.adapter.read(key)
            self.adapter.update(key, self.fields.build_update())
        else:
            raise ValueError(f"unknown operation {op!r}")


def load_and_run(adapter: StorageAdapter, spec: WorkloadSpec,
                 clock: Clock, seed: int = 42,
                 operation_count: Optional[int] = None
                 ) -> Dict[str, RunReport]:
    """Convenience: YCSB's standard load-then-run invocation."""
    runner = WorkloadRunner(adapter, spec, clock, seed=seed)
    load_report = runner.load()
    run_report = runner.run(operation_count)
    return {"load": load_report, "run": run_report}
