"""YCSB's request-distribution generators (Cooper et al., SoCC 2010).

Ports of the reference generators the core workloads use:

* :class:`UniformGenerator` -- uniform over [lb, ub];
* :class:`ZipfianGenerator` -- Gray et al.'s quick zipfian sampler with the
  standard constant 0.99;
* :class:`ScrambledZipfianGenerator` -- zipfian popularity spread over the
  keyspace by FNV-1a hashing, so popular items are not clustered;
* :class:`SkewedLatestGenerator` -- zipfian favouring recently inserted
  items (workload D);
* :class:`CounterGenerator` -- monotonically increasing ids for inserts;
* :class:`DiscreteGenerator` -- weighted choice over operation types.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..common.hashing import fnv1a_64

ZIPFIAN_CONSTANT = 0.99


class NumberGenerator:
    """Interface: produce the next number in a sequence."""

    def next_value(self) -> int:
        raise NotImplementedError

    def last_value(self) -> int:
        raise NotImplementedError


class CounterGenerator(NumberGenerator):
    """0, 1, 2, ... starting from ``start`` (insert key ids)."""

    def __init__(self, start: int = 0) -> None:
        self._counter = start

    def next_value(self) -> int:
        value = self._counter
        self._counter += 1
        return value

    def last_value(self) -> int:
        return self._counter - 1


class UniformGenerator(NumberGenerator):
    def __init__(self, lb: int, ub: int,
                 rng: Optional[random.Random] = None) -> None:
        if ub < lb:
            raise ValueError("upper bound below lower bound")
        self._lb = lb
        self._ub = ub
        self._rng = rng if rng is not None else random.Random(0)
        self._last = lb

    def next_value(self) -> int:
        self._last = self._rng.randint(self._lb, self._ub)
        return self._last

    def last_value(self) -> int:
        return self._last


def zeta(n: int, theta: float) -> float:
    """zeta(n, theta) = sum_{i=1..n} 1/i^theta (the zipfian normalizer)."""
    # numpy makes this affordable for multi-million-item keyspaces.
    import numpy as np

    return float(np.sum(np.arange(1, n + 1, dtype=np.float64)
                        ** (-theta)))


class ZipfianGenerator(NumberGenerator):
    """Gray et al.'s zipfian sampler over [lb, ub], most popular = lb.

    ``allow_item_count_decrease`` is not needed by the core workloads; the
    item count may *grow* (workload D inserts), handled by
    :meth:`next_for_items` recomputing eta lazily from a cached zeta.
    """

    def __init__(self, lb: int, ub: int,
                 constant: float = ZIPFIAN_CONSTANT,
                 rng: Optional[random.Random] = None) -> None:
        self._lb = lb
        self._items = ub - lb + 1
        if self._items <= 0:
            raise ValueError("empty zipfian range")
        self._theta = constant
        self._rng = rng if rng is not None else random.Random(0)
        self._zeta2 = zeta(2, self._theta)
        self._zetan = zeta(self._items, self._theta)
        self._zetan_items = self._items
        self._alpha = 1.0 / (1.0 - self._theta)
        self._last = lb

    def _eta(self, items: int, zetan: float) -> float:
        return ((1 - (2.0 / items) ** (1 - self._theta))
                / (1 - self._zeta2 / zetan))

    def _extend_zetan(self, items: int) -> float:
        """Incrementally extend the cached zeta sum to ``items``."""
        if items > self._zetan_items:
            import numpy as np

            extra = np.arange(self._zetan_items + 1, items + 1,
                              dtype=np.float64) ** (-self._theta)
            self._zetan += float(np.sum(extra))
            self._zetan_items = items
        return self._zetan

    def next_for_items(self, items: int) -> int:
        zetan = self._extend_zetan(items)
        u = self._rng.random()
        uz = u * zetan
        if uz < 1.0:
            value = self._lb
        elif uz < 1.0 + 0.5 ** self._theta:
            value = self._lb + 1
        else:
            eta = self._eta(items, zetan)
            value = self._lb + int(items * (eta * u - eta + 1.0)
                                   ** self._alpha)
        self._last = min(value, self._lb + items - 1)
        return self._last

    def next_value(self) -> int:
        return self.next_for_items(self._items)

    def last_value(self) -> int:
        return self._last


class ScrambledZipfianGenerator(NumberGenerator):
    """Zipfian popularity scattered across [lb, ub] by FNV hashing."""

    def __init__(self, lb: int, ub: int,
                 rng: Optional[random.Random] = None) -> None:
        self._lb = lb
        self._items = ub - lb + 1
        self._zipf = ZipfianGenerator(0, self._items - 1, rng=rng)
        self._last = lb

    def next_value(self) -> int:
        rank = self._zipf.next_value()
        self._last = self._lb + fnv1a_64(rank) % self._items
        return self._last

    def last_value(self) -> int:
        return self._last


class SkewedLatestGenerator(NumberGenerator):
    """Zipfian over recency: item (basis.last - zipf_rank)."""

    def __init__(self, basis: CounterGenerator,
                 rng: Optional[random.Random] = None) -> None:
        self._basis = basis
        self._rng = rng if rng is not None else random.Random(0)
        initial = max(self._basis.last_value(), 1)
        self._zipf = ZipfianGenerator(0, initial, rng=self._rng)
        self._last = 0

    def next_value(self) -> int:
        maximum = self._basis.last_value()
        if maximum < 0:
            raise ValueError("latest distribution over empty keyspace")
        rank = self._zipf.next_for_items(maximum + 1)
        self._last = maximum - rank
        return self._last

    def last_value(self) -> int:
        return self._last


class DiscreteGenerator:
    """Weighted choice over labelled outcomes (operation mix)."""

    def __init__(self, pairs: Sequence[Tuple[str, float]],
                 rng: Optional[random.Random] = None) -> None:
        total = sum(weight for _, weight in pairs)
        if total <= 0:
            raise ValueError("discrete generator needs positive weights")
        self._pairs: List[Tuple[str, float]] = [
            (label, weight / total) for label, weight in pairs if weight > 0]
        self._rng = rng if rng is not None else random.Random(0)

    def next_value(self) -> str:
        u = self._rng.random()
        acc = 0.0
        for label, probability in self._pairs:
            acc += probability
            if u < acc:
                return label
        return self._pairs[-1][0]

    def labels(self) -> List[str]:
        return [label for label, _ in self._pairs]
