"""Storage adapters binding YCSB operations to the systems under test.

Mirrors YCSB's DB-binding layer.  :class:`KVAdapter` is the YCSB Redis
binding's exact strategy: records are hashes, plus a sorted-set index keyed
by a hash of the record key so scan workloads can enumerate windows.
:class:`SqlAdapter` is the relational binding (the YCSB JDBC strategy):
records are rows whose YCSB fields are columns, and scans walk the
primary-key B-tree natively -- no shadow index.  :class:`ClientAdapter`
runs the same commands through the RESP client/server path (the TLS
experiment); :class:`GDPRAdapter` drives the full GDPR layer (metadata,
ACL, audit, encryption) over either engine.
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, List, Optional

from ..common.hashing import crc32_of
from ..gdpr.access_control import Principal
from ..gdpr.metadata import GDPRMetadata
from ..gdpr.store import GDPRStore
from ..kvstore.server import StoreClient
from ..kvstore.store import KeyValueStore

INDEX_KEY = "_ycsb_index"


class StorageAdapter:
    """Interface: the five YCSB operations."""

    def flush(self) -> None:
        """Drain any buffered operations (no-op for unbuffered
        adapters); the runner calls this at the end of every phase."""

    def insert(self, key: str, values: Dict[str, bytes]) -> None:
        raise NotImplementedError

    def read(self, key: str,
             fields: Optional[List[str]] = None) -> Dict[str, bytes]:
        raise NotImplementedError

    def update(self, key: str, values: Dict[str, bytes]) -> None:
        raise NotImplementedError

    def scan(self, start_key: str,
             count: int) -> List[Dict[str, bytes]]:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError


def _key_score(key: str) -> float:
    """The YCSB Redis binding indexes records by a hash of the key.

    Scores must be deterministic across processes, so hash the key bytes
    (float conversion keeps 53 bits -- collisions only reorder the index,
    which scan semantics tolerate, exactly as in the reference binding).
    """
    return float(crc32_of(key.encode("utf-8")))


def _pairs_to_dict(flat: List[bytes]) -> Dict[str, bytes]:
    return {flat[i].decode("ascii"): flat[i + 1]
            for i in range(0, len(flat), 2)}


class KVAdapter(StorageAdapter):
    """Direct in-process binding to :class:`KeyValueStore`."""

    def __init__(self, store: KeyValueStore,
                 maintain_scan_index: bool = True) -> None:
        self.store = store
        self.maintain_scan_index = maintain_scan_index

    def insert(self, key: str, values: Dict[str, bytes]) -> None:
        args: List = ["HSET", key]
        for name, payload in values.items():
            args.append(name)
            args.append(payload)
        self.store.execute(*args)
        if self.maintain_scan_index:
            self.store.execute("ZADD", INDEX_KEY, _key_score(key), key)

    def read(self, key: str,
             fields: Optional[List[str]] = None) -> Dict[str, bytes]:
        if fields:
            flat = self.store.execute("HMGET", key, *fields)
            return {name: payload for name, payload in zip(fields, flat)
                    if payload is not None}
        return _pairs_to_dict(self.store.execute("HGETALL", key))

    def update(self, key: str, values: Dict[str, bytes]) -> None:
        args: List = ["HSET", key]
        for name, payload in values.items():
            args.append(name)
            args.append(payload)
        self.store.execute(*args)

    def scan(self, start_key: str,
             count: int) -> List[Dict[str, bytes]]:
        members = self.store.execute(
            "ZRANGEBYSCORE", INDEX_KEY, _key_score(start_key), "+inf",
            "LIMIT", 0, count)
        return [self.read(member.decode("ascii")) for member in members]

    def delete(self, key: str) -> None:
        self.store.execute("DEL", key)
        if self.maintain_scan_index:
            self.store.execute("ZREM", INDEX_KEY, key)


class SqlAdapter(StorageAdapter):
    """YCSB binding for the relational engine (the JDBC strategy).

    Each record is one row; YCSB fields are columns upserted in a
    single statement.  Scans need no auxiliary structure: the ordered
    heap answers ``WHERE key >= start ORDER BY key LIMIT n`` directly
    (the ``RANGE`` statement), which is the structural advantage the
    relational backend has for workload E.
    """

    def __init__(self, store) -> None:
        self.store = store

    def insert(self, key: str, values: Dict[str, bytes]) -> None:
        args: List = ["HSET", key]
        for name, payload in values.items():
            args.append(name)
            args.append(payload)
        self.store.execute(*args)

    update = insert

    def read(self, key: str,
             fields: Optional[List[str]] = None) -> Dict[str, bytes]:
        if fields:
            flat = self.store.execute("HMGET", key, *fields)
            return {name: payload for name, payload in zip(fields, flat)
                    if payload is not None}
        return _pairs_to_dict(self.store.execute("HGETALL", key))

    def scan(self, start_key: str,
             count: int) -> List[Dict[str, bytes]]:
        keys = self.store.execute("RANGE", start_key, count)
        return [self.read(key.decode("ascii")) for key in keys]

    def delete(self, key: str) -> None:
        self.store.execute("DEL", key)


class ClientAdapter(StorageAdapter):
    """The same binding, but over the RESP client/server round trip."""

    def __init__(self, client: StoreClient,
                 maintain_scan_index: bool = True) -> None:
        self.client = client
        self.maintain_scan_index = maintain_scan_index

    def insert(self, key: str, values: Dict[str, bytes]) -> None:
        args: List = ["HSET", key]
        for name, payload in values.items():
            args.append(name)
            args.append(payload)
        self.client.call(*args)
        if self.maintain_scan_index:
            self.client.call("ZADD", INDEX_KEY, _key_score(key), key)

    def read(self, key: str,
             fields: Optional[List[str]] = None) -> Dict[str, bytes]:
        if fields:
            flat = self.client.call("HMGET", key, *fields)
            return {name: payload for name, payload in zip(fields, flat)
                    if payload is not None}
        return _pairs_to_dict(self.client.call("HGETALL", key))

    def update(self, key: str, values: Dict[str, bytes]) -> None:
        args: List = ["HSET", key]
        for name, payload in values.items():
            args.append(name)
            args.append(payload)
        self.client.call(*args)

    def scan(self, start_key: str,
             count: int) -> List[Dict[str, bytes]]:
        members = self.client.call(
            "ZRANGEBYSCORE", INDEX_KEY, _key_score(start_key), "+inf",
            "LIMIT", 0, count)
        return [self.read(member.decode("ascii")) for member in members]

    def delete(self, key: str) -> None:
        self.client.call("DEL", key)
        if self.maintain_scan_index:
            self.client.call("ZREM", INDEX_KEY, key)


class ClusterAdapter(StorageAdapter):
    """YCSB binding over a sharded :class:`ClusterClient`.

    Records are hashes, as in :class:`KVAdapter`.  Scans are unsupported:
    the scan index is a single cross-slot sorted set, which a hash-slot
    cluster cannot host (the YCSB Redis Cluster binding has the same
    limitation).  With ``pipeline_depth > 1`` mutations are batched into
    pipelined round trips; reads flush pending mutations first, so
    read-your-writes always holds.

    Live resharding is transparent: the cluster client follows MOVED/ASK
    redirects, so a workload keeps running while slots migrate between
    shards.  :attr:`redirects_followed` exposes how many redirects the
    run absorbed (the benchmark's "cost of topology change" signal).

    With ``read_from_replicas=True`` (and replication attached to the
    cluster client) eligible reads go to a random replica of the owning
    shard; :attr:`replica_reads` / :attr:`stale_replica_reads` expose
    how many were served there and how many raced an in-flight write to
    the same key -- the stale-read probability as a measured number.
    """

    def __init__(self, cluster, pipeline_depth: int = 1,
                 read_from_replicas: Optional[bool] = None) -> None:
        self.cluster = cluster
        self.pipeline_depth = max(1, pipeline_depth)
        # Tri-state: None defers to the client's own read_from_replicas
        # setting; True/False overrides it for this adapter's reads.
        self.read_from_replicas = read_from_replicas
        self._pending = None

    @property
    def redirects_followed(self) -> int:
        """MOVED + ASK redirects this adapter's client has followed."""
        return (self.cluster.moved_redirects
                + self.cluster.ask_redirects)

    @property
    def replica_reads(self) -> int:
        """Reads this adapter's client served from a replica."""
        return self.cluster.replica_reads

    @property
    def stale_replica_reads(self) -> int:
        """Replica reads that raced an in-flight write to the same key."""
        return self.cluster.stale_replica_reads

    def _queue(self, *args) -> None:
        if self.pipeline_depth <= 1:
            self.cluster.call(*args)
            return
        if self._pending is None:
            self._pending = self.cluster.pipeline()
        self._pending.call(*args)
        if len(self._pending) >= self.pipeline_depth:
            self.flush()

    def flush(self) -> None:
        """Execute any buffered mutations in one pipelined round trip."""
        if self._pending is not None and len(self._pending):
            pending, self._pending = self._pending, None
            pending.execute()

    def insert(self, key: str, values: Dict[str, bytes]) -> None:
        args: List = ["HSET", key]
        for name, payload in values.items():
            args.append(name)
            args.append(payload)
        self._queue(*args)

    # Updates are the same HSET write (no scan index to maintain here).
    update = insert

    def read(self, key: str,
             fields: Optional[List[str]] = None) -> Dict[str, bytes]:
        self.flush()
        prefer = self.read_from_replicas
        if fields:
            flat = self.cluster.call("HMGET", key, *fields,
                                     prefer_replica=prefer)
            return {name: payload for name, payload in zip(fields, flat)
                    if payload is not None}
        return _pairs_to_dict(self.cluster.call("HGETALL", key,
                                                prefer_replica=prefer))

    def scan(self, start_key: str,
             count: int) -> List[Dict[str, bytes]]:
        raise NotImplementedError(
            "scan needs a cross-slot index; run scan workloads against a "
            "single-node adapter")

    def delete(self, key: str) -> None:
        self._queue("DEL", key)


# -- GDPR binding ---------------------------------------------------------------------


def pack_fields(values: Dict[str, bytes]) -> bytes:
    """Length-prefixed field packing (field payloads are arbitrary bytes)."""
    out = [struct.pack(">H", len(values))]
    for name, payload in values.items():
        encoded = name.encode("ascii")
        out.append(struct.pack(">HI", len(encoded), len(payload)))
        out.append(encoded)
        out.append(payload)
    return b"".join(out)


def unpack_fields(blob: bytes) -> Dict[str, bytes]:
    (count,) = struct.unpack_from(">H", blob)
    offset = 2
    values = {}
    for _ in range(count):
        name_len, payload_len = struct.unpack_from(">HI", blob, offset)
        offset += 6
        name = blob[offset:offset + name_len].decode("ascii")
        offset += name_len
        values[name] = blob[offset:offset + payload_len]
        offset += payload_len
    return values


class GDPRAdapter(StorageAdapter):
    """Drives the full GDPR layer: every record is personal data.

    Each YCSB record is owned by a per-record data subject (the worst case
    for key management), processed under a configurable purpose, with an
    optional retention TTL.
    """

    def __init__(self, store: GDPRStore, purpose: str = "service",
                 ttl: Optional[float] = None,
                 principal: Optional[Principal] = None) -> None:
        self.store = store
        self.purpose = purpose
        self.ttl = ttl
        self.principal = principal  # None -> controller
        self._sorted_keys: List[str] = []

    def _metadata_for(self, key: str) -> GDPRMetadata:
        return GDPRMetadata(owner=f"subject-{key}",
                            purposes=frozenset({self.purpose}),
                            ttl=self.ttl)

    def insert(self, key: str, values: Dict[str, bytes]) -> None:
        kwargs = {}
        if self.principal is not None:
            kwargs["principal"] = self.principal
        self.store.put(key, pack_fields(values), self._metadata_for(key),
                       purpose=self.purpose, **kwargs)
        index = bisect.bisect_left(self._sorted_keys, key)
        if index >= len(self._sorted_keys) \
                or self._sorted_keys[index] != key:
            self._sorted_keys.insert(index, key)

    def read(self, key: str,
             fields: Optional[List[str]] = None) -> Dict[str, bytes]:
        kwargs = {}
        if self.principal is not None:
            kwargs["principal"] = self.principal
        record = self.store.get(key, purpose=self.purpose, **kwargs)
        values = unpack_fields(record.value)
        if fields:
            return {name: values[name] for name in fields
                    if name in values}
        return values

    def update(self, key: str, values: Dict[str, bytes]) -> None:
        current = self.read(key)
        current.update(values)
        kwargs = {}
        if self.principal is not None:
            kwargs["principal"] = self.principal
        metadata = self.store.index.get_metadata(key) \
            or self._metadata_for(key)
        self.store.put(key, pack_fields(current), metadata,
                       purpose=self.purpose, **kwargs)

    def scan(self, start_key: str,
             count: int) -> List[Dict[str, bytes]]:
        index = bisect.bisect_left(self._sorted_keys, start_key)
        window = self._sorted_keys[index:index + count]
        out = []
        for key in window:
            try:
                out.append(self.read(key))
            except KeyError:
                continue
        return out

    def delete(self, key: str) -> None:
        kwargs = {}
        if self.principal is not None:
            kwargs["principal"] = self.principal
        self.store.delete(key, **kwargs)
        index = bisect.bisect_left(self._sorted_keys, key)
        if index < len(self._sorted_keys) \
                and self._sorted_keys[index] == key:
            del self._sorted_keys[index]
