"""YCSB: workload definitions, generators, adapters, and the runner."""

from .adapters import (
    ClientAdapter,
    ClusterAdapter,
    GDPRAdapter,
    KVAdapter,
    SqlAdapter,
    StorageAdapter,
    pack_fields,
    unpack_fields,
)
from .distributions import (
    CounterGenerator,
    DiscreteGenerator,
    ScrambledZipfianGenerator,
    SkewedLatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)
from .generator import FieldGenerator, build_key_name, flatten_fields
from .openloop import (
    ArrivalProcess,
    OpenLoopReport,
    OpenLoopRunner,
)
from .runner import RunReport, WorkloadRunner, load_and_run
from .workloads import (
    CORE_WORKLOADS,
    FIGURE1_PHASES,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WorkloadSpec,
)

__all__ = [
    "StorageAdapter",
    "KVAdapter",
    "SqlAdapter",
    "ClientAdapter",
    "ClusterAdapter",
    "GDPRAdapter",
    "pack_fields",
    "unpack_fields",
    "CounterGenerator",
    "DiscreteGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "SkewedLatestGenerator",
    "zeta",
    "FieldGenerator",
    "build_key_name",
    "flatten_fields",
    "WorkloadSpec",
    "CORE_WORKLOADS",
    "FIGURE1_PHASES",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "RunReport",
    "WorkloadRunner",
    "load_and_run",
    "ArrivalProcess",
    "OpenLoopReport",
    "OpenLoopRunner",
]
