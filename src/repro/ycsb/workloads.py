"""The YCSB core workload definitions (A-F).

Property values match the reference ``workloads/workload[a-f]`` files:
records are 10 fields x 100 bytes; request distributions and operation
mixes are the published ones.  The paper runs "YCSB workloads ... with 2M
operations"; ``operation_count`` here is a default that the benchmark
harness scales (simulated-time throughput is scale-invariant well before
2M operations, see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadSpec:
    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    request_distribution: str = "zipfian"   # zipfian | latest | uniform
    record_count: int = 1000
    operation_count: int = 10_000
    field_count: int = 10
    field_length: int = 100
    max_scan_length: int = 100
    read_all_fields: bool = True

    def __post_init__(self) -> None:
        total = (self.read_proportion + self.update_proportion
                 + self.insert_proportion + self.scan_proportion
                 + self.read_modify_write_proportion)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"workload {self.name}: proportions sum to {total}, not 1")
        if self.request_distribution not in ("zipfian", "latest", "uniform"):
            raise ValueError(
                f"unknown request distribution "
                f"{self.request_distribution!r}")

    def operation_mix(self) -> Tuple[Tuple[str, float], ...]:
        return (
            ("read", self.read_proportion),
            ("update", self.update_proportion),
            ("insert", self.insert_proportion),
            ("scan", self.scan_proportion),
            ("rmw", self.read_modify_write_proportion),
        )

    def scaled(self, record_count: int = None,
               operation_count: int = None) -> "WorkloadSpec":
        """A copy with adjusted scale (benchmark harness knob)."""
        kwargs = {}
        if record_count is not None:
            kwargs["record_count"] = record_count
        if operation_count is not None:
            kwargs["operation_count"] = operation_count
        return replace(self, **kwargs)


WORKLOAD_A = WorkloadSpec(
    name="A", read_proportion=0.5, update_proportion=0.5)

WORKLOAD_B = WorkloadSpec(
    name="B", read_proportion=0.95, update_proportion=0.05)

WORKLOAD_C = WorkloadSpec(
    name="C", read_proportion=1.0)

WORKLOAD_D = WorkloadSpec(
    name="D", read_proportion=0.95, insert_proportion=0.05,
    request_distribution="latest")

WORKLOAD_E = WorkloadSpec(
    name="E", scan_proportion=0.95, insert_proportion=0.05)

WORKLOAD_F = WorkloadSpec(
    name="F", read_proportion=0.5, read_modify_write_proportion=0.5)

CORE_WORKLOADS: Dict[str, WorkloadSpec] = {
    "A": WORKLOAD_A,
    "B": WORKLOAD_B,
    "C": WORKLOAD_C,
    "D": WORKLOAD_D,
    "E": WORKLOAD_E,
    "F": WORKLOAD_F,
}

# Figure 1's x axis, in order: the two load phases plus the runs.
FIGURE1_PHASES = ("Load-A", "A", "B", "C", "D", "Load-E", "E", "F")
