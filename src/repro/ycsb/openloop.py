"""Open-loop, multi-client load generation over the event core.

The closed-loop :class:`~repro.ycsb.runner.WorkloadRunner` issues the
next operation only when the previous one returns, so offered load always
equals completed load and queueing is invisible.  This module is YCSB's
*other* mode (``-target``): operations are **admitted at a configured
arrival rate** regardless of completions, dispatched to a pool of M
concurrent simulated clients, and any operation that finds every client
busy waits in an explicit backlog.  Two delays are therefore measured
separately per operation:

* **queueing delay** -- admission to dispatch (how long the op waited for
  a free client; grows without bound past saturation);
* **service time** -- dispatch to reply (wire + server queue + execution;
  approaches a ceiling as the shard's loop saturates).

Arrivals are deterministic: a seeded RNG drives either exponential
interarrivals (``poisson``, the classic open-loop model) or constant ones
(``uniform``), so two runs with the same seed admit the same operations
at the same simulated instants and produce identical histograms.

The runner drives an **event-driven cluster**
(:func:`repro.cluster.build_cluster` with ``event_driven=True``; one
shard is just a one-node cluster): each simulated client keeps its own
connection per shard **and its own routing cache** (seeded from the
cluster client's snapshot at construction), routes by hash slot, and
follows MOVED/ASK redirects.  Because caches are per client -- as they
are across real cluster-client processes -- a topology change leaves M
divergent views that re-converge one MOVED at a time:
:meth:`OpenLoopRunner.divergent_clients` counts the clients whose
cached owner for a slot still disagrees with the authoritative map,
and ``OpenLoopReport.route_updates`` counts the MOVED lessons absorbed,
so convergence after a migration is itself a measured number.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from ..common.clock import SimClock
from ..common.errors import (
    ClusterError,
    MovedError,
    RedirectLoopError,
)
from ..common.histogram import LatencyHistogram
from ..common.resp import RespError
from ..cluster.client import ClusterClient, parse_redirect
from ..cluster.slots import slot_for_key
from ..kvstore.server import EventConnection
from .adapters import pack_fields
from .distributions import CounterGenerator, DiscreteGenerator
from .generator import FieldGenerator, build_key_name
from .runner import make_chooser
from .workloads import WorkloadSpec


class ArrivalProcess:
    """Deterministic interarrival generator for a given offered rate."""

    def __init__(self, rate: float, distribution: str = "poisson",
                 rng: Optional[random.Random] = None) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if distribution not in ("poisson", "uniform"):
            raise ValueError(
                f"unknown arrival distribution {distribution!r}")
        self.rate = rate
        self.distribution = distribution
        self._rng = rng if rng is not None else random.Random(0)

    def next_interarrival(self) -> float:
        if self.distribution == "uniform":
            return 1.0 / self.rate
        return self._rng.expovariate(self.rate)


class _Op:
    """One admitted operation's lifecycle."""

    __slots__ = ("kind", "phases", "phase", "arrival", "start", "finish",
                 "asking", "redirects", "failed", "throttled")

    def __init__(self, kind: str, phases: List[List[Any]]) -> None:
        self.kind = kind
        self.phases = phases        # each phase: one argv, one round trip
        self.phase = 0
        self.arrival = 0.0
        self.start = 0.0
        self.finish = 0.0
        self.asking = False
        self.redirects = 0
        self.failed = False
        self.throttled = False      # rejected with QUOTAEXCEEDED


@dataclass
class OpenLoopReport:
    """What an open-loop run measured."""

    clients: int
    arrival_rate: float
    admitted: int
    completed: int
    sim_elapsed: float
    queue_delay: LatencyHistogram = field(default_factory=LatencyHistogram)
    service_time: LatencyHistogram = field(default_factory=LatencyHistogram)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    failures: int = 0
    throttled: int = 0          # ops rejected with QUOTAEXCEEDED (quota
                                # rejections are not failures: the gate
                                # worked); kept out of summary() so
                                # non-tenant parity baselines are stable
    redirects_followed: int = 0
    max_backlog: int = 0
    route_updates: int = 0      # MOVED lessons absorbed into per-client
                                # routing caches (cache convergence)
    # Per-worker latency attribution, filled only when shards run multi-
    # core worker pools.  The histograms are the per-worker server-side
    # distributions folded together with LatencyHistogram.merge, so the
    # shard-level percentiles keep their fidelity; the rows expose the
    # per-core imbalance a hot key causes under the slot % K partition.
    # Pool stats are cumulative since the pool started serving (a fresh
    # cluster per run keeps them per-run, which is what the bench does).
    workers: int = 0
    server_queue_delay: Optional[LatencyHistogram] = None
    server_service_time: Optional[LatencyHistogram] = None
    worker_rows: List[Dict[str, object]] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completions per simulated second."""
        if self.sim_elapsed <= 0:
            return 0.0
        return self.completed / self.sim_elapsed

    def summary(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "arrival_rate": self.arrival_rate,
            "admitted": self.admitted,
            "completed": self.completed,
            "throughput_ops_per_s": round(self.throughput, 1),
            "sim_elapsed_s": self.sim_elapsed,
            "queue_delay": self.queue_delay.summary(),
            "service_time": self.service_time.summary(),
            "failures": self.failures,
            "redirects_followed": self.redirects_followed,
            "route_updates": self.route_updates,
            "max_backlog": self.max_backlog,
        }

    def summary_with_workers(self) -> Dict[str, object]:
        """:meth:`summary` plus the per-worker attribution block (only
        meaningful when the shards ran worker pools)."""
        out = self.summary()
        if self.workers:
            out["workers"] = self.workers
            if self.server_queue_delay is not None:
                out["server_queue_delay"] = self.server_queue_delay.summary()
            if self.server_service_time is not None:
                out["server_service_time"] = \
                    self.server_service_time.summary()
            out["worker_rows"] = self.worker_rows
        return out


class _SimClient:
    """One simulated client: per-shard connections, one op in flight,
    and a private routing cache.

    The cache starts as a snapshot of the cluster client's table and is
    updated only by MOVED replies *this* client receives -- after a
    migration, each client discovers the new owner independently (one
    wasted hop each), exactly as separate client processes would.
    """

    def __init__(self, runner: "OpenLoopRunner", index: int) -> None:
        self._runner = runner
        self.index = index
        self._conns: Dict[int, EventConnection] = {}
        self.routes: List[int] = runner.cluster.routing_snapshot()
        self.op: Optional[_Op] = None
        self._skip_replies = 0         # pending +OKs answering ASKING /
                                       # the connection's TENANT stamp

    def _connection(self, shard: int) -> EventConnection:
        conn = self._conns.get(shard)
        if conn is None:
            conn = self._runner.cluster.nodes[shard].connect()
            conn.on_reply = self._on_reply
            self._conns[shard] = conn
            if self._runner.tenant is not None:
                # Stamp the fresh connection once; the +OK is consumed
                # like ASKING's.
                conn.send_command("TENANT", self._runner.tenant)
                self._skip_replies += 1
        return conn

    def issue(self, op: _Op) -> None:
        self.op = op
        op.start = self._runner.clock.now()
        self._send_phase()

    def _send_phase(self, shard: Optional[int] = None) -> None:
        op = self.op
        argv = op.phases[op.phase]
        if shard is None:
            shard = self.routes[slot_for_key(argv[1])]
        conn = self._connection(shard)
        if op.asking:
            conn.send_command("ASKING")
            op.asking = False
            self._skip_replies += 1
        conn.send_command(*argv)

    def _on_reply(self, value: Any) -> None:
        if self._skip_replies:         # +OK answering ASKING / TENANT
            self._skip_replies -= 1
            return
        op = self.op
        redirect = parse_redirect(value)
        if redirect is not None:
            op.redirects += 1
            self._runner.redirects_followed += 1
            if op.redirects > self._runner.max_redirects:
                raise RedirectLoopError(
                    "open-loop request redirected "
                    f"{op.redirects} times without converging")
            if isinstance(redirect, MovedError):
                # Durable topology change: teach *this client's* cache
                # only -- every other client converges through its own
                # MOVED, the per-process discovery real clusters show.
                self.routes[redirect.slot] = redirect.shard
                self._runner.route_updates += 1
            else:
                op.asking = True
            self._send_phase(redirect.shard)
            return
        if isinstance(value, RespError):
            if value.message.startswith("QUOTAEXCEEDED"):
                op.throttled = True
            else:
                op.failed = True
        op.phase += 1
        if op.phase < len(op.phases):
            self._send_phase()
        else:
            self._runner._complete(self, op)


class OpenLoopRunner:
    """Admit a YCSB-shaped operation stream at a fixed arrival rate."""

    def __init__(self, cluster: ClusterClient, spec: WorkloadSpec,
                 clients: int = 4, arrival_rate: float = 10_000.0,
                 arrival_distribution: str = "poisson",
                 seed: int = 42, max_redirects: int = 5,
                 tenant: Optional[str] = None) -> None:
        if not cluster.event_driven:
            raise ClusterError(
                "the open-loop runner needs an event-driven cluster "
                "(build_cluster(..., event_driven=True))")
        if clients < 1:
            raise ValueError("need at least one simulated client")
        if spec.scan_proportion > 0:
            raise ValueError(
                "the open-loop driver issues point operations; scans "
                "(workload E) need the closed-loop runner")
        self.cluster = cluster
        self.clock: SimClock = cluster.clock
        self.spec = spec
        self.max_redirects = max_redirects
        self.arrival_rate = arrival_rate
        # Per-tenant stream: keys live under the tenant's namespace and
        # every connection is stamped with TENANT before first use, so
        # the cluster's admission gate sees (and bills) this stream as
        # that tenant.
        self.tenant = tenant
        if tenant is None:
            self._key_prefix = ""
        else:
            from ..tenancy.registry import TENANT_SEP
            self._key_prefix = tenant + TENANT_SEP
        root = random.Random(seed)
        self._arrivals = ArrivalProcess(
            arrival_rate, arrival_distribution,
            rng=random.Random(root.randrange(1 << 30)))
        self.fields = FieldGenerator(spec.field_count, spec.field_length,
                                     seed=root.randrange(1 << 30))
        self.insert_counter = CounterGenerator(spec.record_count)
        self._chooser = make_chooser(
            spec, self.insert_counter,
            random.Random(root.randrange(1 << 30)))
        self._op_mix = DiscreteGenerator(
            list(spec.operation_mix()),
            rng=random.Random(root.randrange(1 << 30)))
        self._clients = [_SimClient(self, index)
                         for index in range(clients)]
        self._idle: Deque[_SimClient] = deque(self._clients)
        self._backlog: Deque[_Op] = deque()
        self.redirects_followed = 0
        self.route_updates = 0
        self._report: Optional[OpenLoopReport] = None
        self._to_admit = 0
        self._started_at = 0.0
        self._redirects_before = 0
        self._updates_before = 0

    def set_arrival_rate(self, rate: float) -> None:
        """Change the offered rate between runs (a ramping workload for
        the autoscaler demo).  The interarrival RNG stream continues, so
        a multi-phase ramp is as deterministic as a single run."""
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.arrival_rate = rate
        self._arrivals.rate = rate

    # -- workload plumbing -------------------------------------------------

    def preload(self) -> int:
        """Install the record set directly into the shards (the load
        phase is not what this runner measures), then square up the
        timeline so preload CPU never bills to the run."""
        for keynum in range(self.spec.record_count):
            key = self._key_prefix + build_key_name(keynum)
            value = pack_fields(self.fields.build_values())
            # Authoritative routing, not the client's cached table: the
            # direct store write bypasses the server's MOVED check, so a
            # stale cache (possible after a migration, now that MOVED
            # lessons stay per client) must not plant records on a shard
            # that no longer owns the slot.
            shard = self.cluster.slots.shard_for_key(key)
            self.cluster.nodes[shard].store.execute("SET", key, value)
        self.cluster.sync()
        return self.spec.record_count

    def _next_existing_key(self) -> str:
        keynum = min(self._chooser.next_value(),
                     self.insert_counter.last_value())
        return self._key_prefix + build_key_name(max(keynum, 0))

    def _make_op(self) -> _Op:
        kind = self._op_mix.next_value()
        if kind == "read":
            return _Op("read", [["GET", self._next_existing_key()]])
        if kind == "update":
            return _Op("update", [[
                "SET", self._next_existing_key(),
                pack_fields(self.fields.build_values())]])
        if kind == "insert":
            keynum = self.insert_counter.next_value()
            return _Op("insert", [[
                "SET", self._key_prefix + build_key_name(keynum),
                pack_fields(self.fields.build_values())]])
        if kind == "rmw":
            key = self._next_existing_key()
            return _Op("rmw", [
                ["GET", key],
                ["SET", key, pack_fields(self.fields.build_values())]])
        raise ValueError(f"unknown operation {kind!r}")

    # -- the open loop -----------------------------------------------------

    def run(self, operation_count: Optional[int] = None) -> OpenLoopReport:
        """Admit ``operation_count`` operations at the configured rate and
        drive the event loop until the last one completes."""
        self.begin(operation_count)
        self.clock.run_until_idle()
        return self.finish()

    def begin(self, operation_count: Optional[int] = None) -> None:
        """Schedule this runner's admission stream onto the shared clock
        without driving it.  Several runners -- per-tenant streams over
        one cluster -- ``begin()`` on the same clock, the caller runs the
        clock once, then ``finish()``es each for its report."""
        total = (operation_count if operation_count is not None
                 else self.spec.operation_count)
        report = OpenLoopReport(
            clients=len(self._clients), arrival_rate=self.arrival_rate,
            admitted=0, completed=0, sim_elapsed=0.0)
        self._report = report
        self._to_admit = total
        self._started_at = self.clock.now()
        # Snapshot the lifetime counters so this report carries *this
        # run's* redirects and cache lessons, not the runner's history.
        self._redirects_before = self.redirects_followed
        self._updates_before = self.route_updates
        if total > 0:
            self.clock.schedule_after(self._arrivals.next_interarrival(),
                                      self._arrive, label="arrival")

    def finish(self) -> OpenLoopReport:
        """Close out a :meth:`begin` whose clock has been driven to
        completion and return its report."""
        report = self._report
        report.sim_elapsed = self.clock.now() - self._started_at
        report.redirects_followed = self.redirects_followed \
            - self._redirects_before
        report.route_updates = self.route_updates - self._updates_before
        self._attribute_workers(report)
        return report

    def _attribute_workers(self, report: OpenLoopReport) -> None:
        """Fold each shard's per-worker server-side histograms into the
        report (multi-core shards only): merged dispatch-queue delay and
        service-time distributions, plus per-core rows."""
        pools = [node.pool for node in self.cluster.nodes
                 if getattr(node, "pool", None) is not None]
        if not pools:
            return
        report.workers = sum(pool.num_workers for pool in pools)
        queue_delay = LatencyHistogram()
        service_time = LatencyHistogram()
        for shard, pool in enumerate(pools):
            queue_delay.merge(pool.merged_queue_delay())
            service_time.merge(pool.merged_service_time())
            for row in pool.worker_rows():
                report.worker_rows.append({"shard": shard, **row})
        report.server_queue_delay = queue_delay
        report.server_service_time = service_time

    def divergent_clients(self, slot: int) -> int:
        """How many simulated clients still cache a stale owner for
        ``slot``?  After a migration this starts at the full client
        count and drops to zero as each client absorbs its own MOVED --
        the convergence counter for per-client routing caches."""
        owner = self.cluster.slots.shard_of_slot(slot)
        return sum(1 for client in self._clients
                   if client.routes[slot] != owner)

    def _arrive(self) -> None:
        report = self._report
        op = self._make_op()
        op.arrival = self.clock.now()
        report.admitted += 1
        if self._idle:
            self._dispatch(self._idle.popleft(), op)
        else:
            self._backlog.append(op)
            report.max_backlog = max(report.max_backlog,
                                     len(self._backlog))
        if report.admitted < self._to_admit:
            self.clock.schedule_after(self._arrivals.next_interarrival(),
                                      self._arrive, label="arrival")

    def _dispatch(self, client: _SimClient, op: _Op) -> None:
        self._report.queue_delay.record(self.clock.now() - op.arrival)
        client.issue(op)

    def _complete(self, client: _SimClient, op: _Op) -> None:
        op.finish = self.clock.now()
        report = self._report
        report.completed += 1
        report.service_time.record(op.finish - op.start)
        report.latency.record(op.finish - op.arrival)
        if op.throttled:
            report.throttled += 1
        elif op.failed:
            report.failures += 1
        if self._backlog:
            self._dispatch(client, self._backlog.popleft())
        else:
            self._idle.append(client)
