"""Record and key generation (YCSB's CoreWorkload key/value builders)."""

from __future__ import annotations

import random
import string
from typing import Dict, List, Optional

from ..common.hashing import fnv1a_64

_PRINTABLE = (string.ascii_letters + string.digits).encode("ascii")


def build_key_name(keynum: int, ordered: bool = False) -> str:
    """YCSB's key naming: "user" + fnv64(keynum) (hashed insert order)."""
    if ordered:
        return f"user{keynum:019d}"
    return f"user{fnv1a_64(keynum)}"


class FieldGenerator:
    """Deterministic field payloads of fixed length."""

    def __init__(self, field_count: int = 10, field_length: int = 100,
                 seed: int = 0) -> None:
        self.field_count = field_count
        self.field_length = field_length
        self._rng = random.Random(seed)
        self.field_names = [f"field{i}" for i in range(field_count)]

    def _payload(self) -> bytes:
        return bytes(self._rng.choice(_PRINTABLE)
                     for _ in range(self.field_length))

    def build_values(self) -> Dict[str, bytes]:
        """All fields (insert path)."""
        return {name: self._payload() for name in self.field_names}

    def build_update(self) -> Dict[str, bytes]:
        """One random field (update path, YCSB writeallfields=false)."""
        name = self.field_names[self._rng.randrange(self.field_count)]
        return {name: self._payload()}

    def random_field(self) -> str:
        return self.field_names[self._rng.randrange(self.field_count)]

    def record_size(self) -> int:
        return self.field_count * self.field_length


def flatten_fields(values: Dict[str, bytes]) -> List[bytes]:
    """field/value dict -> the flat argument list HSET expects."""
    flat: List[bytes] = []
    for name, payload in values.items():
        flat.append(name.encode("ascii"))
        flat.append(payload)
    return flat
