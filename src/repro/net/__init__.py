"""Simulated networking: channels, TLS-like sessions, stunnel deployment."""

from .channel import (
    LAN_LATENCY,
    PROXIED_BANDWIDTH_BPS,
    RAW_BANDWIDTH_BPS,
    Channel,
    Endpoint,
    loopback,
)
from .tls import (
    PROXY_PER_MESSAGE_OVERHEAD,
    TLS_COST_PER_BYTE,
    TlsSession,
    establish_session_pair,
    stunnel_channel,
)

__all__ = [
    "Channel",
    "Endpoint",
    "loopback",
    "RAW_BANDWIDTH_BPS",
    "PROXIED_BANDWIDTH_BPS",
    "LAN_LATENCY",
    "TlsSession",
    "establish_session_pair",
    "stunnel_channel",
    "TLS_COST_PER_BYTE",
    "PROXY_PER_MESSAGE_OVERHEAD",
]
