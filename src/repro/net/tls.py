"""TLS-like secure channel and the stunnel proxy deployment model.

The paper secures Redis traffic by running stunnel TLS proxies on both ends
and finds that the proxies, not the cryptography, dominate: available
bandwidth fell from 44 Gb/s to 4.9 Gb/s.  Two pieces reproduce that:

* :class:`TlsSession` -- a record-layer protocol over an
  :class:`~repro.net.channel.Endpoint`: a handshake authenticated by a
  pre-shared secret derives per-direction keys; application data then flows
  in sealed records with strictly increasing sequence numbers (replay and
  reorder detection).  Each byte pays a crypto CPU cost.
* :func:`stunnel_channel` -- builds the proxied channel: bandwidth capped
  at the measured 4.9 Gb/s and a per-message proxy traversal cost for the
  two extra hops (client->proxy, proxy->proxy, proxy->server collapse into
  one channel with added per-message overhead).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

from ..common.clock import Clock
from ..common.errors import HandshakeError, IntegrityError, ProtocolError
from ..crypto.cipher import AuthenticatedCipher, random_bytes
from .channel import PROXIED_BANDWIDTH_BPS, Channel, Endpoint

# Software TLS record processing: ~1.5 GB/s per core.
TLS_COST_PER_BYTE = 0.7e-9
# Each stunnel hop adds user-space copies, context switches, and a TCP
# traversal; two proxies sit on the path.  30 us per proxy per message.
PROXY_PER_MESSAGE_OVERHEAD = 2 * 30e-6

_MAGIC = b"RTLS"
_RECORD_HEADER = struct.Struct(">4sQI")  # magic, sequence, length


class TlsSession:
    """One endpoint of a mutually-authenticated encrypted session."""

    def __init__(self, endpoint: Endpoint, psk: bytes, is_client: bool,
                 clock: Optional[Clock] = None,
                 crypto_cost_per_byte: float = TLS_COST_PER_BYTE) -> None:
        self._endpoint = endpoint
        self._psk = psk
        self._is_client = is_client
        self._clock = clock
        self._crypto_cost = crypto_cost_per_byte
        self._send_cipher: Optional[AuthenticatedCipher] = None
        self._recv_cipher: Optional[AuthenticatedCipher] = None
        self._send_seq = 0
        self._recv_seq = 0
        self._rx_buffer = bytearray()
        self.handshake_complete = False

    # -- handshake -----------------------------------------------------------

    def _derive(self, client_random: bytes, server_random: bytes,
                direction: bytes) -> AuthenticatedCipher:
        secret = hashlib.sha256(
            b"|".join([self._psk, client_random, server_random, direction])
        ).digest()
        return AuthenticatedCipher(secret)

    def start_handshake(self) -> None:
        """Client side: send ClientHello (random + proof of PSK)."""
        if not self._is_client:
            raise HandshakeError("only the client starts the handshake")
        self._client_random = random_bytes(16)
        proof = hashlib.sha256(self._psk + self._client_random).digest()
        self._endpoint.send(b"HELO" + self._client_random + proof)

    def respond_handshake(self) -> None:
        """Server side: verify ClientHello, send ServerHello."""
        if self._is_client:
            raise HandshakeError("client cannot respond to the handshake")
        data = self._endpoint.recv()
        if len(data) != 4 + 16 + 32 or not data.startswith(b"HELO"):
            raise HandshakeError("malformed ClientHello")
        client_random = data[4:20]
        proof = data[20:]
        expected = hashlib.sha256(self._psk + client_random).digest()
        if proof != expected:
            raise HandshakeError("client failed PSK authentication")
        server_random = random_bytes(16)
        server_proof = hashlib.sha256(
            self._psk + server_random + client_random).digest()
        self._endpoint.send(b"SRVH" + server_random + server_proof)
        self._finish(client_random, server_random)

    def finish_handshake(self) -> None:
        """Client side: verify ServerHello and derive session keys."""
        data = self._endpoint.recv()
        if len(data) != 4 + 16 + 32 or not data.startswith(b"SRVH"):
            raise HandshakeError("malformed ServerHello")
        server_random = data[4:20]
        proof = data[20:]
        expected = hashlib.sha256(
            self._psk + server_random + self._client_random).digest()
        if proof != expected:
            raise HandshakeError("server failed PSK authentication")
        self._finish(self._client_random, server_random)

    def _finish(self, client_random: bytes, server_random: bytes) -> None:
        c2s = self._derive(client_random, server_random, b"c2s")
        s2c = self._derive(client_random, server_random, b"s2c")
        if self._is_client:
            self._send_cipher, self._recv_cipher = c2s, s2c
        else:
            self._send_cipher, self._recv_cipher = s2c, c2s
        self.handshake_complete = True

    # -- record layer -----------------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        if self._clock is not None:
            self._clock.advance(nbytes * self._crypto_cost)

    def send(self, plaintext: bytes) -> None:
        """Seal ``plaintext`` into one record and transmit it."""
        if not self.handshake_complete:
            raise HandshakeError("handshake not complete")
        self._charge(len(plaintext))
        aad = struct.pack(">Q", self._send_seq)
        sealed = self._send_cipher.seal(plaintext, aad=aad)
        header = _RECORD_HEADER.pack(_MAGIC, self._send_seq, len(sealed))
        self._endpoint.send(header + sealed)
        self._send_seq += 1

    def recv(self) -> bytes:
        """Receive, verify, and decrypt the next record (b"" if none)."""
        if not self.handshake_complete:
            raise HandshakeError("handshake not complete")
        self._rx_buffer.extend(self._endpoint.recv())
        if len(self._rx_buffer) < _RECORD_HEADER.size:
            return b""
        magic, seq, length = _RECORD_HEADER.unpack_from(self._rx_buffer)
        if magic != _MAGIC:
            raise ProtocolError("bad record magic")
        end = _RECORD_HEADER.size + length
        if len(self._rx_buffer) < end:
            return b""
        if seq != self._recv_seq:
            raise IntegrityError(
                f"record sequence {seq} != expected {self._recv_seq} "
                "(replay or reorder)")
        sealed = bytes(self._rx_buffer[_RECORD_HEADER.size:end])
        del self._rx_buffer[:end]
        aad = struct.pack(">Q", seq)
        plaintext = self._recv_cipher.open(sealed, aad=aad)
        self._charge(len(plaintext))
        self._recv_seq += 1
        return plaintext

    def recv_all(self) -> bytes:
        """Drain every complete pending record."""
        chunks = []
        while True:
            chunk = self.recv()
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


def establish_session_pair(channel: Channel, psk: bytes,
                           clock: Optional[Clock] = None,
                           crypto_cost_per_byte: float = TLS_COST_PER_BYTE):
    """Run the handshake over ``channel``; returns (client, server) sessions."""
    client_end, server_end = channel.endpoints()
    client = TlsSession(client_end, psk, is_client=True, clock=clock,
                        crypto_cost_per_byte=crypto_cost_per_byte)
    server = TlsSession(server_end, psk, is_client=False, clock=clock,
                        crypto_cost_per_byte=crypto_cost_per_byte)
    client.start_handshake()
    server.respond_handshake()
    client.finish_handshake()
    return client, server


def stunnel_channel(clock: Optional[Clock] = None,
                    bandwidth_bps: float = PROXIED_BANDWIDTH_BPS,
                    proxy_overhead: float = PROXY_PER_MESSAGE_OVERHEAD,
                    latency: float = 20e-6) -> Channel:
    """A channel with the measured characteristics of the stunnel path.

    The paper observed the proxy pair reduced available bandwidth from
    44 Gb/s to 4.9 Gb/s; each message additionally traverses two user-space
    proxies.
    """
    return Channel(clock=clock, bandwidth_bps=bandwidth_bps,
                   latency=latency, per_message_overhead=proxy_overhead)
