"""Simulated network channels with bandwidth and latency accounting.

A :class:`Channel` is a bidirectional byte pipe between two
:class:`Endpoint` objects sharing one simulated clock.  Sending charges
``propagation_delay + nbytes / bandwidth`` to the clock, which is how the
TLS experiment reproduces the paper's measured bandwidth collapse
(44 Gb/s raw -> 4.9 Gb/s through stunnel proxies).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..common.clock import Clock, SimClock
from ..common.errors import ChannelClosedError

# The paper's testbed numbers (section 4.2).
RAW_BANDWIDTH_BPS = 44e9 / 8          # 44 Gb/s in bytes/second
PROXIED_BANDWIDTH_BPS = 4.9e9 / 8     # 4.9 Gb/s through stunnel proxies
LAN_LATENCY = 20e-6                   # one-way datacenter-ish latency


class Endpoint:
    """One side of a channel: send() to the peer, recv() from a byte queue."""

    def __init__(self, channel: "Channel", side: int) -> None:
        self._channel = channel
        self._side = side
        self._rx: Deque[bytes] = deque()
        self._rx_bytes = 0

    # -- sending -----------------------------------------------------------

    def send(self, data: bytes) -> None:
        self._channel.transmit(self._side, data)

    # -- receiving ---------------------------------------------------------

    def _deliver(self, data: bytes) -> None:
        self._rx.append(data)
        self._rx_bytes += len(data)

    @property
    def available(self) -> int:
        return self._rx_bytes

    def recv(self, max_bytes: Optional[int] = None) -> bytes:
        """Drain up to ``max_bytes`` from the receive queue (all if None).

        Returns b"" when nothing is pending; raises ChannelClosedError only
        if the channel is closed *and* the queue is empty.
        """
        if not self._rx:
            if self._channel.closed:
                raise ChannelClosedError("channel is closed")
            return b""
        if max_bytes is None:
            data = b"".join(self._rx)
            self._rx.clear()
            self._rx_bytes = 0
            return data
        out = bytearray()
        while self._rx and len(out) < max_bytes:
            chunk = self._rx.popleft()
            take = max_bytes - len(out)
            if len(chunk) > take:
                out.extend(chunk[:take])
                self._rx.appendleft(chunk[take:])
            else:
                out.extend(chunk)
        self._rx_bytes -= len(out)
        return bytes(out)

    def close(self) -> None:
        self._channel.close()


class Channel:
    """A bidirectional pipe with shared bandwidth/latency parameters."""

    def __init__(self, clock: Optional[Clock] = None,
                 bandwidth_bps: float = RAW_BANDWIDTH_BPS,
                 latency: float = LAN_LATENCY,
                 per_message_overhead: float = 0.0) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0 or per_message_overhead < 0:
            raise ValueError("delays cannot be negative")
        self.clock = clock if clock is not None else SimClock()
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.per_message_overhead = per_message_overhead
        self.closed = False
        self.messages = 0
        self.bytes_transferred = 0
        self._ends = (Endpoint(self, 0), Endpoint(self, 1))

    def endpoints(self) -> tuple:
        """(client_end, server_end)."""
        return self._ends

    def transmit(self, from_side: int, data: bytes) -> None:
        if self.closed:
            raise ChannelClosedError("channel is closed")
        cost = (self.latency + self.per_message_overhead
                + len(data) / self.bandwidth_bps)
        self.clock.advance(cost)
        self.messages += 1
        self.bytes_transferred += len(data)
        self._ends[1 - from_side]._deliver(data)

    def close(self) -> None:
        self.closed = True

    def transfer_time(self, nbytes: int) -> float:
        """Predicted one-way time for an ``nbytes`` message."""
        return (self.latency + self.per_message_overhead
                + nbytes / self.bandwidth_bps)


def loopback(clock: Optional[Clock] = None) -> Channel:
    """A raw (unproxied) channel at the testbed's 44 Gb/s."""
    return Channel(clock=clock, bandwidth_bps=RAW_BANDWIDTH_BPS,
                   latency=LAN_LATENCY)
