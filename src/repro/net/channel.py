"""Simulated network channels with bandwidth and latency accounting.

A :class:`Channel` is a bidirectional byte pipe between two
:class:`Endpoint` objects sharing one simulated clock.  It runs in one of
two modes:

* **inline** (the default): sending charges
  ``propagation_delay + nbytes / bandwidth`` to the clock before the bytes
  appear at the peer -- the closed-loop style, which is how the TLS
  experiment reproduces the paper's measured bandwidth collapse
  (44 Gb/s raw -> 4.9 Gb/s through stunnel proxies);
* **event-driven** (``event_driven=True``, requires a
  :class:`~repro.common.clock.SimClock`): sending costs the sender
  nothing now; the bytes are *scheduled* to arrive at the peer at
  ``serialization-done + latency``, with consecutive sends in the same
  direction queueing behind each other at the link's bandwidth, as frames
  do on a real NIC.  Delivery fires the receiving endpoint's receiver
  callback, which is how the event-loop server learns a connection is
  readable without anyone blocking.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..common.clock import Clock, SimClock
from ..common.errors import ChannelClosedError

# The paper's testbed numbers (section 4.2).
RAW_BANDWIDTH_BPS = 44e9 / 8          # 44 Gb/s in bytes/second
PROXIED_BANDWIDTH_BPS = 4.9e9 / 8     # 4.9 Gb/s through stunnel proxies
LAN_LATENCY = 20e-6                   # one-way datacenter-ish latency


class Endpoint:
    """One side of a channel: send() to the peer, recv() from a byte queue."""

    def __init__(self, channel: "Channel", side: int) -> None:
        self._channel = channel
        self._side = side
        self._rx: Deque[bytes] = deque()
        self._rx_bytes = 0
        self._receiver: Optional[Callable[[], None]] = None

    # -- sending -----------------------------------------------------------

    def send(self, data: bytes) -> None:
        self._channel.transmit(self._side, data)

    # -- receiving ---------------------------------------------------------

    def set_receiver(self, callback: Optional[Callable[[], None]]) -> None:
        """Register a readable-notification callback (event mode): it runs
        after each delivery, and the callee drains with :meth:`recv`."""
        self._receiver = callback

    def _deliver(self, data: bytes) -> None:
        self._rx.append(data)
        self._rx_bytes += len(data)
        if self._receiver is not None:
            self._receiver()

    @property
    def available(self) -> int:
        return self._rx_bytes

    def recv(self, max_bytes: Optional[int] = None) -> bytes:
        """Drain up to ``max_bytes`` from the receive queue (all if None).

        Returns b"" when nothing is pending; raises ChannelClosedError only
        if the channel is closed *and* the queue is empty.
        """
        if not self._rx:
            if self._channel.closed:
                raise ChannelClosedError("channel is closed")
            return b""
        if max_bytes is None:
            data = b"".join(self._rx)
            self._rx.clear()
            self._rx_bytes = 0
            return data
        out = bytearray()
        while self._rx and len(out) < max_bytes:
            chunk = self._rx.popleft()
            take = max_bytes - len(out)
            if len(chunk) > take:
                out.extend(chunk[:take])
                self._rx.appendleft(chunk[take:])
            else:
                out.extend(chunk)
        self._rx_bytes -= len(out)
        return bytes(out)

    def close(self) -> None:
        self._channel.close()


class Channel:
    """A bidirectional pipe with shared bandwidth/latency parameters."""

    def __init__(self, clock: Optional[Clock] = None,
                 bandwidth_bps: float = RAW_BANDWIDTH_BPS,
                 latency: float = LAN_LATENCY,
                 per_message_overhead: float = 0.0,
                 event_driven: bool = False) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0 or per_message_overhead < 0:
            raise ValueError("delays cannot be negative")
        self.clock = clock if clock is not None else SimClock()
        if event_driven and not hasattr(self.clock, "schedule_at"):
            raise ValueError(
                "event-driven channels need a scheduling clock (SimClock)")
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.per_message_overhead = per_message_overhead
        self.event_driven = event_driven
        self.closed = False
        self.messages = 0
        self.bytes_transferred = 0
        # Per-direction link occupancy (event mode): a transmit may not
        # start serializing before the previous one in that direction has
        # left the NIC.
        self._link_free_at = [0.0, 0.0]
        self._ends = (Endpoint(self, 0), Endpoint(self, 1))

    def endpoints(self) -> tuple:
        """(client_end, server_end)."""
        return self._ends

    def transmit(self, from_side: int, data: bytes) -> None:
        if self.closed:
            raise ChannelClosedError("channel is closed")
        self.messages += 1
        self.bytes_transferred += len(data)
        if not self.event_driven:
            cost = (self.latency + self.per_message_overhead
                    + len(data) / self.bandwidth_bps)
            self.clock.advance(cost)
            self._ends[1 - from_side]._deliver(data)
            return
        # Event mode: the sender is not blocked; the bytes serialize onto
        # the link after any earlier transmit in this direction, then
        # propagate.  Delivery is a scheduled event at the receiver.
        serialize = (self.per_message_overhead
                     + len(data) / self.bandwidth_bps)
        start = max(self.clock.now(), self._link_free_at[from_side])
        done = start + serialize
        self._link_free_at[from_side] = done
        peer = self._ends[1 - from_side]
        self.clock.schedule_at(done + self.latency,
                               lambda: peer._deliver(data),
                               label=f"deliver[{1 - from_side}]")

    def close(self) -> None:
        self.closed = True

    def transfer_time(self, nbytes: int) -> float:
        """Predicted one-way time for an ``nbytes`` message."""
        return (self.latency + self.per_message_overhead
                + nbytes / self.bandwidth_bps)


def loopback(clock: Optional[Clock] = None) -> Channel:
    """A raw (unproxied) channel at the testbed's 44 Gb/s."""
    return Channel(clock=clock, bandwidth_bps=RAW_BANDWIDTH_BPS,
                   latency=LAN_LATENCY)


def event_loopback(clock: Clock) -> Channel:
    """An event-driven raw channel on a scheduling clock."""
    return Channel(clock=clock, bandwidth_bps=RAW_BANDWIDTH_BPS,
                   latency=LAN_LATENCY, event_driven=True)
