"""The GDPR compliance layer: the paper's contribution as a library."""

from .access_control import AccessController, Grant, Operation, Principal
from .articles import (
    ALL_FEATURES,
    GDPR_STORAGE_RELATED_ARTICLES,
    GDPR_TOTAL_ARTICLES,
    TABLE1,
    Article,
    StorageFeature,
    articles_for_feature,
    feature_demand,
)
from .audit import (AuditBlock, AuditChainMode, AuditDurability,
                    AuditLog, AuditRecord)
from .breach import NOTIFICATION_DEADLINE_SECONDS, BreachNotifier, BreachReport
from .compliance import (
    ArticleVerdict,
    Capability,
    ComplianceAssessment,
    FeatureProfile,
    FeatureSupport,
    ResponseTime,
    assess,
    gdpr_store_profile,
    redis_baseline_profile,
    render_table1,
)
from .indexing import MetadataIndex
from .location import BUILTIN_REGIONS, LocationManager, Region
from .backup import Backup, BackupManager, ReconciliationReport
from .metadata import GDPRMetadata, Record, pack_envelope, unpack_envelope
from .policy import PolicyEngine, RetentionPolicy
from .rights import (
    AccessReport,
    ErasureReceipt,
    portability_rows,
    render_portability,
    right_of_access,
    right_to_erasure,
    right_to_object,
    right_to_portability,
    transfer_subject,
)
from .store import CONTROLLER, ErasureEvent, GDPRConfig, GDPRStore

__all__ = [
    "GDPRStore",
    "GDPRConfig",
    "GDPRMetadata",
    "Record",
    "pack_envelope",
    "unpack_envelope",
    "CONTROLLER",
    "ErasureEvent",
    "Principal",
    "Operation",
    "Grant",
    "AccessController",
    "AuditLog",
    "AuditRecord",
    "AuditBlock",
    "AuditChainMode",
    "AuditDurability",
    "MetadataIndex",
    "PolicyEngine",
    "RetentionPolicy",
    "Backup",
    "BackupManager",
    "ReconciliationReport",
    "LocationManager",
    "Region",
    "BUILTIN_REGIONS",
    "BreachNotifier",
    "BreachReport",
    "NOTIFICATION_DEADLINE_SECONDS",
    "right_of_access",
    "right_to_erasure",
    "right_to_portability",
    "portability_rows",
    "render_portability",
    "right_to_object",
    "transfer_subject",
    "AccessReport",
    "ErasureReceipt",
    "StorageFeature",
    "Article",
    "TABLE1",
    "ALL_FEATURES",
    "GDPR_TOTAL_ARTICLES",
    "GDPR_STORAGE_RELATED_ARTICLES",
    "articles_for_feature",
    "feature_demand",
    "Capability",
    "ResponseTime",
    "FeatureSupport",
    "FeatureProfile",
    "ArticleVerdict",
    "ComplianceAssessment",
    "assess",
    "redis_baseline_profile",
    "gdpr_store_profile",
    "render_table1",
]
