"""GDPRStore: the GDPR-compliant layer over the key-value store.

This is the reproduction of the paper's contribution -- "GDPR-compliant
Redis" -- packaged as a reusable layer rather than a patch.  Every feature
from section 3.1 is wired through one facade:

* **Timely deletion** -- metadata TTLs become store expirations; every
  erasure (explicit, lazy, or active) is timestamped against its deadline.
* **Monitoring** -- every data- and control-path interaction appends to a
  hash-chained :class:`~repro.gdpr.audit.AuditLog` whose durability knob
  is the paper's sync/batched spectrum.
* **Indexing** -- inverted indexes by owner/purpose/recipient power the
  subject-rights operations.
* **Access control** -- default-deny, purpose- and time-scoped grants.
* **Encryption** -- envelopes sealed per data subject, so destroying a
  subject's key (crypto-erasure) voids replicas, AOF history, and backups.
* **Location** -- records carry residency constraints checked at write.

Subject rights (Art. 15/17/20/21) are implemented in
:mod:`repro.gdpr.rights` on top of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..common.clock import Clock
from ..common.errors import (
    AccessDeniedError,
    IntegrityError,
    KeyNotFoundError,
    LocationViolationError,
    PurposeViolationError,
    UnknownSubjectError,
)
from ..crypto.keystore import KeyStore
from ..crypto.pseudonymize import Pseudonymizer
from ..engine.base import StorageEngine
from ..kvstore.store import KeyValueStore, StoreConfig
from .access_control import AccessController, Operation, Principal
from .audit import AuditChainMode, AuditDurability, AuditLog
from .indexing import MetadataIndex, WriteBehindIndexer
from .location import LocationManager
from .metadata import GDPRMetadata, Record, pack_envelope, unpack_envelope
from .policy import PolicyEngine

CONTROLLER = Principal.controller()


@dataclass
class GDPRConfig:
    """Policy knobs of the GDPR layer (the compliance spectrum)."""

    encrypt_at_rest: bool = True
    audit_durability: AuditDurability = AuditDurability.SYNC
    audit_batch_interval: float = 1.0
    require_purpose: bool = True
    region: str = "eu-west"
    node_id: str = "node-0"
    default_ttl: Optional[float] = None
    compact_on_erasure: bool = True     # rewrite AOF after Art. 17 erasure
    pseudonymize_audit: bool = False
    erasure_sla: float = 3600.0         # eventual-compliance window (s)
    # Fast-GDPR mode: amortize compliance work off the critical path.
    # Audit records seal into hash-chained blocks (one chain update +
    # one group-commit fsync per block), value+TTL fuse into a single
    # engine command where supported, and engine-side metadata/location
    # bookkeeping goes write-behind.  Tamper evidence and determinism
    # are preserved; the cost is a bounded compliance-visibility window
    # (at most one unsealed block / one write-behind interval).
    fast_gdpr: bool = False
    audit_block_size: int = 64          # records per sealed block
    writebehind_interval: float = 0.1   # dirty-set flush period (s)
    audit_memory_window: Optional[int] = None   # bound on in-RAM records


@dataclass(frozen=True)
class ErasureEvent:
    """One key's removal, timestamped against its deadline."""

    key: str
    subject: str
    reason: str                 # del / lazy-expire / active-expire / erasure
    erased_at: float
    deadline: Optional[float]   # TTL deadline, if the record had one

    @property
    def lateness(self) -> Optional[float]:
        """Seconds past the deadline (negative = early); None if no TTL."""
        if self.deadline is None:
            return None
        return self.erased_at - self.deadline


class GDPRStore:
    """The GDPR-compliant store facade.

    ``kv`` is any :class:`~repro.engine.base.StorageEngine` -- the
    Redis-like :class:`~repro.kvstore.store.KeyValueStore` (default) or
    the relational :class:`~repro.sqlstore.engine.RelationalStore`.
    The layer programs strictly against the engine interface (commands,
    deletion taps, keyspace scans, durability hooks); on engines that
    store GDPR metadata as indexed columns it additionally annotates
    each record's row and prefers the engine's native owner index for
    subject lookups.
    """

    def __init__(self, kv: Optional[StorageEngine] = None,
                 config: Optional[GDPRConfig] = None,
                 keystore: Optional[KeyStore] = None,
                 audit: Optional[AuditLog] = None,
                 access: Optional[AccessController] = None,
                 locations: Optional[LocationManager] = None,
                 policies: Optional[PolicyEngine] = None) -> None:
        self.config = config if config is not None else GDPRConfig()
        self.kv = kv if kv is not None else KeyValueStore(
            StoreConfig(appendonly=True, aof_log_reads=True))
        self.clock: Clock = self.kv.clock
        self.keystore = keystore if keystore is not None else KeyStore()
        self.audit = audit if audit is not None else AuditLog(
            clock=self.clock, durability=self.config.audit_durability,
            batch_interval=self.config.audit_batch_interval,
            chain_mode=(AuditChainMode.BLOCK if self.config.fast_gdpr
                        else AuditChainMode.RECORD),
            block_size=self.config.audit_block_size,
            memory_window=self.config.audit_memory_window)
        self.access = access if access is not None else AccessController()
        self.locations = locations if locations is not None \
            else LocationManager()
        if not self.locations.has_node(self.config.node_id):
            self.locations.place_node(self.config.node_id,
                                      self.config.region)
        self.policies = policies if policies is not None else PolicyEngine()
        self.index = MetadataIndex()
        self.pseudonymizer = Pseudonymizer()
        self.erasure_events: List[ErasureEvent] = []
        self._writebehind: Optional[WriteBehindIndexer] = None
        if self.config.fast_gdpr:
            self._writebehind = WriteBehindIndexer(
                self._apply_writebehind, clock=self.clock,
                interval=self.config.writebehind_interval)
        # Per-tenant policy overrides (attach_tenant_policies): when a
        # resolver is attached, keys inside a registered tenant's
        # namespace take that tenant's policy instead of the global
        # config for retention, residency, audit, encryption, and the
        # fast-GDPR write shape.
        self._tenant_policies = None
        self.kv.add_deletion_listener(self._on_kv_deletion)
        if getattr(self.kv, "supports_tiering", False):
            # A tiering engine archives idle records into cold segments:
            # give it the keystore (demoted values seal under their
            # subject's key, so crypto-erasure reaches the archive),
            # audit its tier events, and drain deferred compliance work
            # before any record leaves the hot tier.
            self.kv.attach_keystore(self.keystore)
            self.kv.add_tier_listener(self._on_tier_event)
            if self._writebehind is not None:
                self.kv.before_demote = self._writebehind.flush

    # -- tenancy ------------------------------------------------------------------

    def attach_tenant_policies(self, resolver) -> None:
        """Install a per-tenant policy resolver (duck-typed: anything
        with ``policy_for_key(name) -> policy | None``, e.g. a
        :class:`~repro.tenancy.registry.TenantRegistry`).

        Keys and subjects carrying a registered ``tenant/`` prefix are
        governed by that tenant's :class:`~repro.tenancy.registry.
        TenantPolicy`; everything else keeps the global config.  If any
        tenant opted into ``fast_gdpr`` the write-behind machinery is
        built on demand so those tenants' writes can take the amortized
        path while strict tenants stay synchronous.
        """
        self._tenant_policies = resolver
        any_fast = getattr(resolver, "any_fast_gdpr", None)
        if self._writebehind is None and any_fast is not None \
                and any_fast():
            self._writebehind = WriteBehindIndexer(
                self._apply_writebehind, clock=self.clock,
                interval=self.config.writebehind_interval)
            if getattr(self.kv, "supports_tiering", False):
                self.kv.before_demote = self._writebehind.flush

    def _tenant_policy(self, name: Optional[str]):
        """The tenant policy governing a qualified key/subject name."""
        if self._tenant_policies is None or name is None:
            return None
        return self._tenant_policies.policy_for_key(name)

    def _encrypt_for(self, key: str) -> bool:
        policy = self._tenant_policy(key)
        if policy is not None:
            return policy.encryption_required
        return self.config.encrypt_at_rest

    # -- internal helpers ---------------------------------------------------------

    def _audit_name(self, subject: Optional[str]) -> Optional[str]:
        if subject is None:
            return None
        if self.config.pseudonymize_audit:
            return self.pseudonymizer.pseudonym(subject)
        return subject

    def _record_audit(self, principal: str, operation: str,
                      key: Optional[str], subject: Optional[str],
                      purpose: Optional[str], outcome: str,
                      detail: str = "") -> None:
        # A tenant that switched monitoring off (its own Art. 30
        # trade-off) keeps its interactions out of the chain; resolve
        # off the key when present, else the (qualified) subject.
        policy = self._tenant_policy(key if key is not None else subject)
        if policy is not None and not policy.audit_enabled:
            return
        self.audit.append(principal=principal, operation=operation,
                          key=key, subject=self._audit_name(subject),
                          purpose=purpose, outcome=outcome, detail=detail)

    def _seal(self, key: str, metadata: GDPRMetadata,
              value: bytes) -> bytes:
        envelope = pack_envelope(metadata, value)
        if not self._encrypt_for(key):
            return envelope
        cipher = self.keystore.cipher_for(metadata.owner)
        return cipher.seal(envelope, aad=key.encode("utf-8"))

    def _unseal(self, key: str, owner: str, blob: bytes) -> bytes:
        if not self._encrypt_for(key):
            return blob
        cipher = self.keystore.cipher_for(owner, create=False)
        return cipher.open(blob, aad=key.encode("utf-8"))

    def _apply_writebehind(self, key: str, work) -> None:
        """Deferred per-write maintenance (the write-behind flush body):
        TTL registration on engines without fused SET-with-expiry,
        engine-native metadata annotation, location bookkeeping."""
        metadata, deadline = work
        if deadline is not None:
            self.kv.execute("PEXPIREAT", key, int(deadline * 1000))
        self.kv.annotate_metadata(key, metadata.owner, metadata.purposes)
        self.locations.record_stored(key, self.config.region)

    def _on_tier_event(self, event: str, detail: str,
                       subject: Optional[str]) -> None:
        """Tier listener: demotions, promotions, and cold erasures are
        compliance-relevant data movements -- chain them."""
        self._record_audit("system", f"tier-{event}", None, subject,
                           None, "ok", detail=detail)

    def _on_kv_deletion(self, db_index: int, key_bytes: bytes,
                        reason: str, when: float) -> None:
        """Deletion listener: keep indexes honest, timestamp erasures."""
        if reason == "demote":
            # A demotion is a tier move, not an erasure: the record is
            # still served (promote-on-read), so metadata, location, and
            # erasure bookkeeping must not see it.
            return
        key = key_bytes.decode("utf-8", "replace")
        if self._writebehind is not None:
            # Never apply deferred maintenance to a dead key (a late
            # PEXPIREAT/annotate would resurrect compliance state).
            self._writebehind.discard(key)
        metadata = self.index.remove(key)
        if metadata is None:
            return
        self.locations.record_erased(key)
        self.erasure_events.append(ErasureEvent(
            key=key, subject=metadata.owner, reason=reason,
            erased_at=when, deadline=metadata.expire_at()))
        if reason != "del":
            # Explicit deletes are audited by their caller with the acting
            # principal; TTL reclamation is the system acting on its own.
            self._record_audit("system", "expire-erase", key,
                               metadata.owner, None, "ok", detail=reason)

    # -- data path -------------------------------------------------------------------

    def put(self, key: str, value: bytes, metadata: GDPRMetadata,
            principal: Principal = CONTROLLER,
            purpose: Optional[str] = None) -> None:
        """Store personal data with its GDPR metadata.

        Enforces, in order: access control, purpose declaration (Art. 5),
        residency (Art. 46).  Applies the TTL as a store expiration and
        audits the write.
        """
        now = self.clock.now()
        try:
            self.access.check(principal, Operation.WRITE, metadata,
                              purpose, now)
        except AccessDeniedError:
            self._record_audit(principal.name, "put", key, metadata.owner,
                               purpose, "denied")
            raise
        if self.config.require_purpose and not metadata.purposes:
            self._record_audit(principal.name, "put", key, metadata.owner,
                               purpose, "error", "no declared purpose")
            raise PurposeViolationError(
                f"record {key!r} declares no processing purpose "
                "(Art. 5 purpose limitation)")
        if metadata.created_at == 0.0:
            metadata = _with_created_at(metadata, now)
        tenant_policy = self._tenant_policy(key)
        if metadata.ttl is None:
            # Storage limitation: derive retention from purpose policies
            # (the tightest bound), else the tenant default, else the
            # store default.
            derived = self.policies.effective_retention(metadata)
            if derived is None and tenant_policy is not None:
                derived = tenant_policy.default_ttl
            if derived is None:
                derived = self.config.default_ttl
            if derived is not None:
                metadata = _with_ttl(metadata, derived)
        self.policies.validate(metadata)
        if tenant_policy is not None and tenant_policy.region is not None \
                and tenant_policy.region != self.config.region:
            # Art. 46 region pin: the tenant's data may only land on
            # nodes inside its pinned region.
            self._record_audit(principal.name, "put", key, metadata.owner,
                               purpose, "denied",
                               f"tenant region pin {tenant_policy.region}")
            raise LocationViolationError(
                f"record {key!r} is pinned to region "
                f"{tenant_policy.region!r} but this node is in "
                f"{self.config.region!r}")
        self.locations.check_placement(metadata, self.config.region)
        blob = self._seal(key, metadata, value)
        deadline = metadata.expire_at()
        use_fast = self._writebehind is not None and (
            tenant_policy.fast_gdpr if tenant_policy is not None
            else self.config.fast_gdpr)
        if use_fast:
            # Fast-GDPR write shape: one fused engine command where the
            # engine speaks SET..PXAT (value + retention deadline in one
            # AOF record), the sidecar index updated inline (reads check
            # purpose/access against it), and the remaining maintenance
            # deferred to the write-behind flush.  The audit append
            # buffers into the current block -- no fsync here.
            if deadline is not None and getattr(
                    self.kv, "supports_set_with_expiry", False):
                self.kv.execute("SET", key, blob, "PXAT",
                                int(deadline * 1000))
                pending_deadline = None
            else:
                self.kv.execute("SET", key, blob)
                pending_deadline = deadline
            self.index.add(key, metadata)
            self._writebehind.enqueue(key, (metadata, pending_deadline))
            self._record_audit(principal.name, "put", key, metadata.owner,
                               purpose, "ok")
            return
        self.kv.execute("SET", key, blob)
        if deadline is not None:
            millis = int(deadline * 1000)
            self.kv.execute("PEXPIREAT", key, millis)
        self.index.add(key, metadata)
        # Engines with native metadata columns (the relational schema)
        # also record owner/purposes in the row, indexed; a no-op on the
        # key-value engine, whose metadata lives in the sealed envelope
        # plus this sidecar index.
        self.kv.annotate_metadata(key, metadata.owner, metadata.purposes)
        self.locations.record_stored(key, self.config.region)
        self._record_audit(principal.name, "put", key, metadata.owner,
                           purpose, "ok")

    def get(self, key: str, principal: Principal = CONTROLLER,
            purpose: Optional[str] = None) -> Record:
        """Read one record, enforcing access control and purpose limits."""
        now = self.clock.now()
        metadata = self.index.get_metadata(key)
        try:
            self.access.check(principal, Operation.READ, metadata,
                              purpose, now)
        except AccessDeniedError:
            self._record_audit(principal.name, "get", key,
                               metadata.owner if metadata else None,
                               purpose, "denied")
            raise
        if purpose is not None and metadata is not None \
                and not metadata.allows_purpose(purpose):
            self._record_audit(principal.name, "get", key, metadata.owner,
                               purpose, "denied", "purpose not permitted")
            raise PurposeViolationError(
                f"purpose {purpose!r} is not permitted for {key!r}")
        blob = self.kv.execute("GET", key)
        if blob is None:
            self._record_audit(principal.name, "get", key,
                               metadata.owner if metadata else None,
                               purpose, "error", "not found")
            raise KeyError(key)
        owner = metadata.owner if metadata else "unknown"
        try:
            envelope = self._unseal(key, owner, blob)
        except (KeyNotFoundError, IntegrityError):
            # Crypto-erased: ciphertext remains but is unreadable forever.
            self._record_audit(principal.name, "get", key, owner,
                               purpose, "error", "crypto-erased")
            raise KeyError(key)
        stored_metadata, value = unpack_envelope(envelope)
        self._record_audit(principal.name, "get", key,
                           stored_metadata.owner, purpose, "ok")
        return Record(key=key, value=value, metadata=stored_metadata)

    def delete(self, key: str, principal: Principal = CONTROLLER) -> bool:
        """Explicitly erase one record (audited with the acting principal)."""
        now = self.clock.now()
        metadata = self.index.get_metadata(key)
        try:
            self.access.check(principal, Operation.DELETE, metadata,
                              None, now)
        except AccessDeniedError:
            self._record_audit(principal.name, "delete", key,
                               metadata.owner if metadata else None,
                               None, "denied")
            raise
        removed = self.kv.execute("DEL", key)
        self._record_audit(principal.name, "delete", key,
                           metadata.owner if metadata else None,
                           None, "ok" if removed else "error",
                           "" if removed else "not found")
        return bool(removed)

    def update_metadata(self, key: str, metadata: GDPRMetadata,
                        principal: Principal = CONTROLLER) -> None:
        """Control-path change: re-store the record under new metadata."""
        record = self.get(key, principal=principal)
        now = self.clock.now()
        self.access.check(principal, Operation.WRITE, metadata, None, now)
        self.locations.check_placement(metadata, self.config.region)
        blob = self._seal(key, metadata, record.value)
        self.kv.execute("SET", key, blob)
        deadline = metadata.expire_at()
        if deadline is not None:
            self.kv.execute("PEXPIREAT", key, int(deadline * 1000))
        self.index.add(key, metadata)
        self.kv.annotate_metadata(key, metadata.owner, metadata.purposes)
        self._record_audit(principal.name, "update-metadata", key,
                           metadata.owner, None, "ok")

    # -- group access (Art. 5 / 21) --------------------------------------------------

    def keys_of_subject(self, subject: str) -> List[str]:
        """Every key the subject owns.

        On engines with native metadata columns this is one indexed
        query against the row data (the relational schema's payoff);
        otherwise the sidecar inverted index answers.
        """
        if self._writebehind is not None:
            # Subject rights need the *current* view: drain deferred
            # annotations before consulting the engine's native index.
            self._writebehind.flush()
        native = self.kv.keys_of_owner(subject)
        if native is not None:
            return native
        return self.index.keys_of_owner(subject)

    def process_for_purpose(self, purpose: str,
                            principal: Principal = CONTROLLER
                            ) -> List[Record]:
        """Read every record processable under ``purpose``.

        Records whose owners objected (Art. 21) are excluded by the index;
        each read is individually access-checked and audited -- the honest
        cost of purpose-limited processing.
        """
        records = []
        for key in self.index.keys_for_purpose(purpose):
            try:
                records.append(self.get(key, principal=principal,
                                        purpose=purpose))
            except (KeyError, AccessDeniedError, PurposeViolationError):
                continue
        return records

    # -- maintenance -----------------------------------------------------------------

    def tick(self) -> None:
        """Drive background work: store cron + audit group commit.

        On a scheduling clock the audit group commit and the write-behind
        flush also fire as daemon events; this tick is the fallback for
        tick-driven harnesses and non-scheduling clocks."""
        self.kv.tick()
        self.audit.tick(self.clock.now())
        if self._writebehind is not None:
            self._writebehind.maybe_flush(self.clock.now())

    def flush_compliance(self) -> None:
        """Synchronously close the fast-GDPR visibility window: drain the
        write-behind dirty-set and seal + group-commit the audit log.
        After this barrier the store's compliance state is as current as
        strict mode's."""
        if self._writebehind is not None:
            self._writebehind.flush()
        self.audit.sync()

    def sweep_policies(self) -> List[str]:
        """Erase records whose policy-derived retention lapsed.

        Catches records that predate a policy *tightening* (their stored
        TTL is stale); legal holds are respected.  Returns erased keys.
        """
        now = self.clock.now()
        entries = [(key, self.index.get_metadata(key))
                   for key in self.index.keys()]
        overdue = self.policies.overdue(entries, now)
        for key in overdue:
            self.kv.execute("DEL", key)
            self._record_audit("system", "policy-erase", key, None,
                               None, "ok")
        return overdue

    def rebuild_indexes(self) -> int:
        """Rebuild in-memory indexes by scanning the keyspace (restart
        path).  Requires decryptable envelopes; crypto-erased records are
        skipped (and therefore stay unreachable).  The scan goes through
        the engine's :meth:`~repro.engine.base.StorageEngine.scan_records`
        view, so it works over any backend."""
        if self._writebehind is not None:
            self._writebehind.flush()
        entries: List[Tuple[str, GDPRMetadata]] = []
        for key_bytes, blob, _expire_at in self.kv.scan_records(0):
            if not isinstance(blob, bytes):
                continue
            key = key_bytes.decode("utf-8", "replace")
            if not self.config.encrypt_at_rest:
                try:
                    metadata, _ = unpack_envelope(blob)
                except Exception:
                    continue
                entries.append((key, metadata))
                continue
            recovered = None
            for owner in list(self.keystore.key_ids()):
                try:
                    envelope = self.keystore.cipher_for(
                        owner, create=False).open(blob,
                                                  aad=key.encode("utf-8"))
                    recovered, _ = unpack_envelope(envelope)
                    break
                except Exception:
                    continue
            if recovered is None:
                # Tenants that opted out of encryption store plaintext
                # envelopes even on an encrypting store.
                try:
                    recovered, _ = unpack_envelope(blob)
                except Exception:
                    recovered = None
            if recovered is not None:
                entries.append((key, recovered))
        count = self.index.rebuild(entries)
        for key, metadata in entries:
            self.kv.annotate_metadata(key, metadata.owner,
                                      metadata.purposes)
            self.locations.record_stored(key, self.config.region)
        return count

    # -- reporting --------------------------------------------------------------------

    def erasure_report(self) -> Dict[str, float]:
        """Timeliness of deletions: the GDPR-level view of Figure 2."""
        with_deadline = [e for e in self.erasure_events
                         if e.lateness is not None]
        if not with_deadline:
            return {"events": float(len(self.erasure_events)),
                    "with_deadline": 0.0, "max_lateness": 0.0,
                    "mean_lateness": 0.0, "sla_breaches": 0.0}
        lateness = [max(e.lateness, 0.0) for e in with_deadline]
        breaches = sum(1 for l in lateness if l > self.config.erasure_sla)
        return {
            "events": float(len(self.erasure_events)),
            "with_deadline": float(len(with_deadline)),
            "max_lateness": max(lateness),
            "mean_lateness": sum(lateness) / len(lateness),
            "sla_breaches": float(breaches),
        }

    def subject_exists(self, subject: str) -> bool:
        return bool(self.keys_of_subject(subject))

    def require_subject(self, subject: str) -> None:
        if not self.subject_exists(subject):
            raise UnknownSubjectError(
                f"no records for data subject {subject!r}")


def _with_created_at(metadata: GDPRMetadata, now: float) -> GDPRMetadata:
    import dataclasses
    return dataclasses.replace(metadata, created_at=now)


def _with_ttl(metadata: GDPRMetadata, ttl: float) -> GDPRMetadata:
    import dataclasses
    return dataclasses.replace(metadata, ttl=ttl)
