"""The compliance spectrum (paper section 3.2) and Table 1 assessment.

The paper's framing: compliance is not binary.  Along **response time** a
system is *real-time* (GDPR tasks complete synchronously) or *eventual*;
along **capability** it supports each feature *fully* (natively),
*partially* (with external infrastructure), or not at all.  *Strict
compliance* = full capability + real-time response on every feature.

:func:`redis_baseline_profile` encodes the paper's section 4 assessment of
unmodified Redis; :func:`gdpr_store_profile` derives a profile from a live
:class:`~repro.gdpr.store.GDPRStore` configuration, so the spectrum the
paper describes in prose is computed from actual system knobs here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .articles import ALL_FEATURES, TABLE1, Article, StorageFeature
from .audit import AuditDurability


class Capability(enum.Enum):
    FULL = "full"          # natively supported
    PARTIAL = "partial"    # needs external infrastructure or policy
    NONE = "none"

    @property
    def rank(self) -> int:
        return {"none": 0, "partial": 1, "full": 2}[self.value]


class ResponseTime(enum.Enum):
    REAL_TIME = "real-time"
    EVENTUAL = "eventual"

    @property
    def rank(self) -> int:
        return {"eventual": 0, "real-time": 1}[self.value]


@dataclass(frozen=True)
class FeatureSupport:
    capability: Capability
    response: ResponseTime = ResponseTime.EVENTUAL
    note: str = ""

    @property
    def strict(self) -> bool:
        return (self.capability is Capability.FULL
                and self.response is ResponseTime.REAL_TIME)


@dataclass
class FeatureProfile:
    """A system's declared support for the six features."""

    name: str
    support: Dict[StorageFeature, FeatureSupport] = field(
        default_factory=dict)

    def get(self, feature: StorageFeature) -> FeatureSupport:
        return self.support.get(
            feature, FeatureSupport(Capability.NONE))

    @property
    def strict(self) -> bool:
        return all(self.get(f).strict for f in ALL_FEATURES)


@dataclass(frozen=True)
class ArticleVerdict:
    article: Article
    capability: Capability
    response: ResponseTime
    missing: tuple

    @property
    def compliant(self) -> bool:
        return self.capability is not Capability.NONE

    @property
    def strict(self) -> bool:
        return (self.capability is Capability.FULL
                and self.response is ResponseTime.REAL_TIME)


@dataclass
class ComplianceAssessment:
    profile_name: str
    verdicts: List[ArticleVerdict]

    @property
    def articles_compliant(self) -> int:
        return sum(1 for v in self.verdicts if v.compliant)

    @property
    def articles_strict(self) -> int:
        return sum(1 for v in self.verdicts if v.strict)

    @property
    def strict(self) -> bool:
        return all(v.strict for v in self.verdicts)


def assess(profile: FeatureProfile) -> ComplianceAssessment:
    """Evaluate a feature profile against every Table 1 article.

    An article's capability/response is the weakest across the features it
    needs (a chain is as compliant as its weakest link).
    """
    verdicts = []
    for article in TABLE1:
        supports = [profile.get(f) for f in article.features]
        capability = min((s.capability for s in supports),
                         key=lambda c: c.rank)
        response = min((s.response for s in supports),
                       key=lambda r: r.rank)
        missing = tuple(f.value for f, s in zip(article.features, supports)
                        if s.capability is Capability.NONE)
        verdicts.append(ArticleVerdict(article=article,
                                       capability=capability,
                                       response=response, missing=missing))
    return ComplianceAssessment(profile_name=profile.name,
                                verdicts=verdicts)


def redis_baseline_profile() -> FeatureProfile:
    """Unmodified Redis, as section 4 of the paper characterizes it:
    "fully supports monitoring, metadata indexing, and managing data
    locations; partially supports timely deletion; offers no native
    support for access control and encryption"."""
    return FeatureProfile(name="redis-4.0-unmodified", support={
        StorageFeature.MONITORING: FeatureSupport(
            Capability.FULL, ResponseTime.EVENTUAL,
            "AOF/MONITOR/slowlog exist but miss reads by default"),
        StorageFeature.INDEXING: FeatureSupport(
            Capability.FULL, ResponseTime.REAL_TIME,
            "KEYS/SCAN and data structures"),
        StorageFeature.LOCATION: FeatureSupport(
            Capability.FULL, ResponseTime.REAL_TIME,
            "explicit placement of instances"),
        StorageFeature.TIMELY_DELETION: FeatureSupport(
            Capability.PARTIAL, ResponseTime.EVENTUAL,
            "EXPIRE is lazy-probabilistic; deleted data persists in AOF"),
        StorageFeature.ACCESS_CONTROL: FeatureSupport(Capability.NONE),
        StorageFeature.ENCRYPTION: FeatureSupport(Capability.NONE),
    })


def gdpr_store_profile(store, tls_enabled: bool = True,
                       name: Optional[str] = None) -> FeatureProfile:
    """Derive a profile from a live GDPRStore's actual configuration."""
    from .store import GDPRStore  # typing only; avoids import cycle

    assert isinstance(store, GDPRStore)
    kv_cfg = store.kv.config
    deletion_response = (
        ResponseTime.REAL_TIME
        if kv_cfg.expiry_strategy in ("fullscan", "indexed")
        else ResponseTime.EVENTUAL)
    deletion_capability = (
        Capability.FULL if kv_cfg.appendonly
        and (store.config.compact_on_erasure or store.config.encrypt_at_rest)
        else Capability.PARTIAL)
    audit_sync = store.audit.durability is AuditDurability.SYNC
    monitoring = FeatureSupport(
        Capability.FULL if kv_cfg.aof_log_reads or store.audit is not None
        else Capability.PARTIAL,
        ResponseTime.REAL_TIME if audit_sync else ResponseTime.EVENTUAL,
        f"audit durability={store.audit.durability.value}")
    encryption = FeatureSupport(
        Capability.FULL if store.config.encrypt_at_rest and tls_enabled
        else (Capability.PARTIAL if store.config.encrypt_at_rest
              else Capability.NONE),
        ResponseTime.REAL_TIME,
        "per-subject envelopes" + (" + TLS" if tls_enabled else ""))
    return FeatureProfile(
        name=name or f"gdpr-store({store.config.node_id})",
        support={
            StorageFeature.TIMELY_DELETION: FeatureSupport(
                deletion_capability, deletion_response,
                f"expiry={kv_cfg.expiry_strategy}"),
            StorageFeature.MONITORING: monitoring,
            StorageFeature.INDEXING: FeatureSupport(
                Capability.FULL, ResponseTime.REAL_TIME,
                "owner/purpose/recipient inverted indexes"),
            StorageFeature.ACCESS_CONTROL: FeatureSupport(
                Capability.FULL, ResponseTime.REAL_TIME,
                "default-deny purpose/time-scoped grants"),
            StorageFeature.ENCRYPTION: encryption,
            StorageFeature.LOCATION: FeatureSupport(
                Capability.FULL, ResponseTime.REAL_TIME,
                f"region={store.config.region}"),
        })


def render_table1(profiles: Optional[List[FeatureProfile]] = None) -> str:
    """Render Table 1, optionally with per-profile verdict columns."""
    header = ["No.", "GDPR article", "Key requirement", "Storage feature"]
    assessments = []
    if profiles:
        for profile in profiles:
            assessments.append(assess(profile))
            header.append(profile.name)
    rows = [header]
    for i, article in enumerate(TABLE1):
        features = ("All" if article.needs_all_features
                    else ", ".join(f.value.title()
                                   for f in article.features))
        row = [article.number, article.name, article.requirement, features]
        for assessment in assessments:
            verdict = assessment.verdicts[i]
            row.append(f"{verdict.capability.value}/"
                       f"{verdict.response.value}")
        rows.append(row)
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c])
                               for c, cell in enumerate(row)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
