"""Machine-readable registry of the storage-relevant GDPR articles.

This encodes the paper's Table 1: the 13 article entries that
"significantly impact the design, interfacing, or performance of storage
systems", each mapped to the storage features it requires.  The compliance
assessor and the Table 1 benchmark both consume this registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class StorageFeature(enum.Enum):
    """The six features of GDPR-compliant storage (paper section 3.1)."""

    TIMELY_DELETION = "timely deletion"
    MONITORING = "monitoring"
    INDEXING = "metadata indexing"
    ACCESS_CONTROL = "access control"
    ENCRYPTION = "encryption"
    LOCATION = "manage data location"


ALL_FEATURES: Tuple[StorageFeature, ...] = tuple(StorageFeature)


@dataclass(frozen=True)
class Article:
    """One row of Table 1."""

    number: str               # e.g. "5.1", "17", "33,34"
    name: str
    requirement: str
    features: Tuple[StorageFeature, ...]

    @property
    def needs_all_features(self) -> bool:
        return set(self.features) == set(ALL_FEATURES)


def _all() -> Tuple[StorageFeature, ...]:
    return ALL_FEATURES


# Table 1 of the paper, row by row.
TABLE1: List[Article] = [
    Article("5.1", "Purpose limitation",
            "Data must be collected and used for specific purposes",
            (StorageFeature.INDEXING,)),
    Article("5.1", "Storage limitation",
            "Data should not be stored beyond its purpose",
            (StorageFeature.TIMELY_DELETION,)),
    Article("5.2", "Accountability",
            "Controller must be able to demonstrate compliance",
            _all()),
    Article("13", "Conditions for data collection",
            "Get user's consent on how their data would be managed",
            _all()),
    Article("15", "Right of access by users",
            "Provide users a timely access to all their data",
            (StorageFeature.INDEXING,)),
    Article("17", "Right to be forgotten",
            "Find and delete groups of data",
            (StorageFeature.TIMELY_DELETION,)),
    Article("20", "Right to data portability",
            "Transfer data to other controllers upon request",
            (StorageFeature.INDEXING,)),
    Article("21", "Right to object",
            "Data should not be used for any objected reasons",
            (StorageFeature.INDEXING,)),
    Article("25", "Protection by design and by default",
            "Safeguard and restrict access to data",
            (StorageFeature.ACCESS_CONTROL, StorageFeature.ENCRYPTION)),
    Article("30", "Records of processing activity",
            "Store audit logs of all operations",
            (StorageFeature.MONITORING,)),
    Article("32", "Security of data",
            "Implement appropriate data security measures",
            (StorageFeature.ACCESS_CONTROL, StorageFeature.ENCRYPTION)),
    Article("33,34", "Notify data breaches",
            "Share insights and audit trails from concerned systems",
            (StorageFeature.MONITORING,)),
    Article("46", "Transfers subject to safeguards",
            "Control where the data resides",
            (StorageFeature.LOCATION,)),
]

# The paper's headline statistic: 31 of GDPR's 99 articles pertain to
# storage; 99 articles total; 173 recitals.
GDPR_TOTAL_ARTICLES = 99
GDPR_STORAGE_RELATED_ARTICLES = 31
GDPR_TOTAL_RECITALS = 173


def articles_for_feature(feature: StorageFeature) -> List[Article]:
    """Every Table 1 row that requires ``feature``."""
    return [article for article in TABLE1 if feature in article.features]


def feature_demand() -> Dict[StorageFeature, int]:
    """How many Table 1 rows require each feature."""
    return {feature: len(articles_for_feature(feature))
            for feature in ALL_FEATURES}


# Rights of data subjects (section 2.1) vs controller responsibilities
# (section 2.2) as the paper partitions them.
SUBJECT_RIGHTS_ARTICLES = ("15", "17", "20", "21")
CONTROLLER_ARTICLES = ("5.1", "5.2", "13", "24", "25", "30", "32",
                       "33,34", "46")
