"""Backups under the right to be forgotten.

Art. 17 erasure must reach *backups* (paper section 2.1), yet rewriting a
backup archive per erasure request is operationally absurd -- this is
exactly why Google Cloud's "up to 6 months to purge deleted data from all
internal systems" policy exists (paper sections 3.2 and 5.1).

:class:`BackupManager` models the two industrial answers:

* **crypto-erasure by construction** -- backups store the encrypted
  keyspace plus the *wrapped* per-subject keys; destroying a subject's
  key at the keystore voids their data in every backup generation at
  once, with zero backup I/O;
* **reconciliation** -- :meth:`reconcile_erasure` audits which backup
  generations still *mention* erased keys and (optionally) rewrites
  them, yielding the erasure-completeness report a DPO would need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.clock import Clock
from ..kvstore.snapshot import snapshot_mentions_key
from ..kvstore.store import KeyValueStore, StoreConfig
from .store import GDPRStore


@dataclass
class Backup:
    """One point-in-time backup generation."""

    label: str
    taken_at: float
    snapshot: bytes
    wrapped_keys: Dict[str, bytes]
    rewritten: bool = False

    def mentions_key(self, key: str) -> bool:
        return snapshot_mentions_key(self.snapshot,
                                     key.encode("utf-8"))


@dataclass
class ReconciliationReport:
    subject: str
    checked: int
    mentioning: List[str] = field(default_factory=list)
    rewritten: List[str] = field(default_factory=list)
    crypto_voided: bool = False

    @property
    def residual_generations(self) -> int:
        """Backups still carrying (unreadable) ciphertext of the subject."""
        return len(self.mentioning) - len(self.rewritten)


class BackupManager:
    """Keeps bounded backup generations of a GDPR store."""

    def __init__(self, store: GDPRStore, max_generations: int = 7) -> None:
        if max_generations < 1:
            raise ValueError("need at least one backup generation")
        self.store = store
        self.clock: Clock = store.clock
        self.max_generations = max_generations
        self.backups: List[Backup] = []

    # -- lifecycle -------------------------------------------------------------------

    def take_backup(self, label: Optional[str] = None) -> Backup:
        """Snapshot the keyspace and the wrapped key material."""
        if label is None:
            label = f"backup-{len(self.backups):04d}"
        backup = Backup(
            label=label,
            taken_at=self.clock.now(),
            snapshot=self.store.kv.save_snapshot(),
            wrapped_keys=self.store.keystore.export_wrapped())
        self.backups.append(backup)
        if len(self.backups) > self.max_generations:
            self.backups.pop(0)
        self.store.audit.append(principal="system", operation="backup",
                                outcome="ok", detail=label)
        return backup

    def find(self, label: str) -> Backup:
        for backup in self.backups:
            if backup.label == label:
                return backup
        raise KeyError(label)

    def restore(self, label: str) -> GDPRStore:
        """Materialize a backup into a fresh GDPRStore.

        The restored keystore re-imports the *wrapped* keys under the
        live master -- so subjects crypto-erased since the backup stay
        erased (their key ids are tombstoned at the keystore).
        """
        from .store import GDPRConfig

        backup = self.find(label)
        kv = KeyValueStore(StoreConfig(appendonly=False),
                           clock=self.clock)
        kv.load_snapshot(backup.snapshot)
        restored = GDPRStore(kv=kv, config=self.store.config,
                             keystore=self.store.keystore,
                             locations=self.store.locations)
        restored.rebuild_indexes()
        self.store.audit.append(principal="system", operation="restore",
                                outcome="ok", detail=label)
        return restored

    # -- erasure reconciliation ----------------------------------------------------------

    def generations_mentioning(self, key: str) -> List[str]:
        return [b.label for b in self.backups if b.mentions_key(key)]

    def reconcile_erasure(self, subject: str, erased_keys: List[str],
                          rewrite: bool = False) -> ReconciliationReport:
        """Audit (and optionally scrub) backups after an Art. 17 erasure.

        With ``rewrite=False`` the report simply documents which
        generations still hold ciphertext -- safe if (and only if) the
        subject was crypto-erased.  With ``rewrite=True`` each affected
        generation is replaced by a fresh snapshot of the live (already
        erased) keyspace, physically removing the bytes.
        """
        report = ReconciliationReport(
            subject=subject, checked=len(self.backups),
            crypto_voided=subject in
            list(self.store.keystore.erased_ids()))
        for backup in self.backups:
            if any(backup.mentions_key(key) for key in erased_keys):
                report.mentioning.append(backup.label)
                if rewrite:
                    backup.snapshot = self.store.kv.save_snapshot()
                    backup.wrapped_keys = \
                        self.store.keystore.export_wrapped()
                    backup.rewritten = True
                    report.rewritten.append(backup.label)
        self.store.audit.append(
            principal="system", operation="backup-reconcile",
            subject=self.store._audit_name(subject), outcome="ok",
            detail=f"{len(report.mentioning)} generations affected, "
                   f"{len(report.rewritten)} rewritten")
        return report
