"""Per-record GDPR metadata and its wire envelope.

Section 3.1 requires storage to track, per item of personal data: the
owning data subject, whitelisted processing purposes, objected purposes
(Art. 21), a time-to-live (Art. 5.1e storage limitation), provenance and
sharing (Art. 15's "recipients to whom it has been disclosed"), and
permitted storage locations (Art. 46).  :class:`GDPRMetadata` carries all
of that; :func:`pack_envelope` / :func:`unpack_envelope` serialize the
metadata together with the user value into the single opaque blob the
underlying key-value store sees.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

from ..common.errors import SerializationError

_SEPARATOR = b"\x00"


@dataclass(frozen=True)
class GDPRMetadata:
    """Immutable metadata attached to one stored record."""

    owner: str
    purposes: FrozenSet[str] = frozenset()
    objections: FrozenSet[str] = frozenset()
    ttl: Optional[float] = None            # seconds from creation; None = none
    origin: str = "subject"                # where the data came from
    shared_with: FrozenSet[str] = frozenset()
    allowed_regions: FrozenSet[str] = frozenset()  # empty = anywhere
    created_at: float = 0.0
    decision_making: bool = False          # used in automated decisions (Art 15)

    def __post_init__(self) -> None:
        if not self.owner:
            raise ValueError("metadata must name an owning data subject")
        overlap = self.purposes & self.objections
        if overlap:
            raise ValueError(
                f"purposes also listed as objections: {sorted(overlap)}")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive (or None)")

    # -- purpose logic (Art. 5.1, Art. 21) -------------------------------------

    def allows_purpose(self, purpose: str) -> bool:
        """Whitelist + blacklist check: the purpose must be declared and
        must not have been objected to."""
        return purpose in self.purposes and purpose not in self.objections

    def with_objection(self, purpose: str) -> "GDPRMetadata":
        """A copy with ``purpose`` objected (Art. 21 exercise)."""
        return replace(self,
                       objections=self.objections | {purpose},
                       purposes=self.purposes - {purpose})

    def with_shared(self, recipient: str) -> "GDPRMetadata":
        return replace(self, shared_with=self.shared_with | {recipient})

    def expire_at(self) -> Optional[float]:
        if self.ttl is None:
            return None
        return self.created_at + self.ttl

    # -- serialization --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "owner": self.owner,
            "purposes": sorted(self.purposes),
            "objections": sorted(self.objections),
            "ttl": self.ttl,
            "origin": self.origin,
            "shared_with": sorted(self.shared_with),
            "allowed_regions": sorted(self.allowed_regions),
            "created_at": self.created_at,
            "decision_making": self.decision_making,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "GDPRMetadata":
        try:
            return cls(
                owner=raw["owner"],
                purposes=frozenset(raw.get("purposes", ())),
                objections=frozenset(raw.get("objections", ())),
                ttl=raw.get("ttl"),
                origin=raw.get("origin", "subject"),
                shared_with=frozenset(raw.get("shared_with", ())),
                allowed_regions=frozenset(raw.get("allowed_regions", ())),
                created_at=raw.get("created_at", 0.0),
                decision_making=raw.get("decision_making", False),
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"bad metadata dict: {exc}") from exc


def pack_envelope(metadata: GDPRMetadata, value: bytes) -> bytes:
    """``<json metadata> NUL <raw value>`` -- the blob the KV store holds."""
    header = json.dumps(metadata.to_dict(), sort_keys=True,
                        separators=(",", ":")).encode("utf-8")
    if _SEPARATOR in header:
        raise SerializationError("metadata header contains NUL")
    return header + _SEPARATOR + value


def unpack_envelope(blob: bytes) -> Tuple[GDPRMetadata, bytes]:
    header, sep, value = blob.partition(_SEPARATOR)
    if not sep:
        raise SerializationError("envelope missing metadata separator")
    try:
        raw = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt metadata header: {exc}") from exc
    return GDPRMetadata.from_dict(raw), value


@dataclass(frozen=True)
class Record:
    """A decoded record as returned to callers of the GDPR store."""

    key: str
    value: bytes
    metadata: GDPRMetadata = field(compare=False)
