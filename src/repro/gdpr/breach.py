"""Breach detection support and notification deadlines (Art. 33 & 34).

Art. 33 gives controllers 72 hours from becoming aware of a personal-data
breach to notify the supervisory authority; Art. 34 adds notifying the
affected subjects when the risk is high.  What storage contributes is the
*evidence*: "share insights and audit trails from concerned systems".
:class:`BreachNotifier` reconstructs, from the audit log, which subjects'
data was touched during a compromise window, assembles the notification
report, and tracks the deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .audit import AuditLog, AuditRecord

NOTIFICATION_DEADLINE_SECONDS = 72 * 3600.0


@dataclass
class BreachReport:
    """The Art. 33 notification package."""

    breach_id: str
    detected_at: float
    window_start: float
    window_end: float
    affected_subjects: List[str]
    affected_keys: List[str]
    operations_in_window: int
    denied_in_window: int
    high_risk: bool
    evidence: List[AuditRecord] = field(default_factory=list)
    notified_authority_at: Optional[float] = None
    notified_subjects_at: Optional[float] = None

    @property
    def authority_deadline(self) -> float:
        return self.detected_at + NOTIFICATION_DEADLINE_SECONDS

    def deadline_met(self) -> Optional[bool]:
        """None while unnotified; True/False once notified."""
        if self.notified_authority_at is None:
            return None
        return self.notified_authority_at <= self.authority_deadline

    def summary(self) -> Dict[str, object]:
        return {
            "breach_id": self.breach_id,
            "subjects": len(self.affected_subjects),
            "keys": len(self.affected_keys),
            "operations": self.operations_in_window,
            "denied": self.denied_in_window,
            "high_risk": self.high_risk,
            "deadline_met": self.deadline_met(),
        }


class BreachNotifier:
    """Builds breach reports from audit evidence and tracks deadlines."""

    def __init__(self, audit: AuditLog, clock=None) -> None:
        self.audit = audit
        self.clock = clock if clock is not None else audit.clock
        self.reports: List[BreachReport] = []
        self._counter = 0

    def detect(self, window_start: float, window_end: float,
               compromised_keys: Optional[Set[str]] = None,
               high_risk: Optional[bool] = None) -> BreachReport:
        """Assemble the report for a compromise window.

        ``compromised_keys`` narrows the blast radius when forensics knows
        which keys the attacker reached; otherwise every key touched in
        the window is presumed affected.
        """
        evidence = self.audit.records_between(window_start, window_end)
        if compromised_keys is not None:
            evidence = [r for r in evidence
                        if r.key is not None and r.key in compromised_keys]
        subjects: Set[str] = set()
        keys: Set[str] = set()
        denied = 0
        for record in evidence:
            if record.subject is not None:
                subjects.add(record.subject)
            if record.key is not None:
                keys.add(record.key)
            if record.outcome == "denied":
                denied += 1
        if high_risk is None:
            # Heuristic: reads of personal data by non-system principals
            # constitute exposure -> high risk (Art. 34 applies).
            high_risk = any(r.operation == "get" and r.outcome == "ok"
                            for r in evidence)
        self._counter += 1
        report = BreachReport(
            breach_id=f"breach-{self._counter:04d}",
            detected_at=self.clock.now(),
            window_start=window_start, window_end=window_end,
            affected_subjects=sorted(subjects), affected_keys=sorted(keys),
            operations_in_window=len(evidence), denied_in_window=denied,
            high_risk=high_risk, evidence=list(evidence))
        self.reports.append(report)
        self.audit.append(principal="system", operation="breach-detect",
                          outcome="ok",
                          detail=f"{report.breach_id}: "
                                 f"{len(subjects)} subjects")
        return report

    def notify_authority(self, report: BreachReport) -> bool:
        """Record authority notification; returns deadline compliance."""
        report.notified_authority_at = self.clock.now()
        met = report.deadline_met()
        self.audit.append(principal="system", operation="breach-notify",
                          outcome="ok" if met else "error",
                          detail=f"{report.breach_id} authority notified "
                                 f"{'within' if met else 'PAST'} 72h")
        return bool(met)

    def notify_subjects(self, report: BreachReport) -> int:
        """Art. 34: notify affected subjects when risk is high."""
        report.notified_subjects_at = self.clock.now()
        if not report.high_risk:
            return 0
        self.audit.append(principal="system", operation="breach-notify",
                          outcome="ok",
                          detail=f"{report.breach_id}: "
                                 f"{len(report.affected_subjects)} "
                                 "subjects notified")
        return len(report.affected_subjects)

    def overdue_reports(self) -> List[BreachReport]:
        """Reports whose 72h authority deadline has lapsed unnotified."""
        now = self.clock.now()
        return [r for r in self.reports
                if r.notified_authority_at is None
                and now > r.authority_deadline]
