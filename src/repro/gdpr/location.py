"""Managing data location (GDPR Art. 46, Chapter V).

GDPR restricts where personal data may physically live; transfers outside
the EU need adequacy decisions or safeguards.  The model here:

* a :class:`Region` registry with an ``adequate`` flag (EU members and
  adequacy-decision countries are lawful destinations by default);
* a :class:`LocationManager` that places stores in regions, validates each
  record's ``allowed_regions`` against its node's region at write time,
  and answers "where does subject X's data live right now?" -- the
  find-and-control requirement of section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..common.errors import LocationViolationError
from .metadata import GDPRMetadata


@dataclass(frozen=True)
class Region:
    code: str                # "eu-west", "us-east", ...
    jurisdiction: str        # "EU", "US", ...
    adequate: bool           # lawful destination for EU personal data


# A small built-in map; deployments register their own.
BUILTIN_REGIONS = {
    "eu-west": Region("eu-west", "EU", adequate=True),
    "eu-central": Region("eu-central", "EU", adequate=True),
    "uk": Region("uk", "UK", adequate=True),          # adequacy decision
    "us-east": Region("us-east", "US", adequate=False),
    "us-west": Region("us-west", "US", adequate=False),
    "ap-south": Region("ap-south", "IN", adequate=False),
}


class LocationManager:
    """Tracks node placement and enforces residency constraints."""

    def __init__(self, regions: Optional[Dict[str, Region]] = None) -> None:
        self.regions: Dict[str, Region] = dict(
            regions if regions is not None else BUILTIN_REGIONS)
        self._node_region: Dict[str, str] = {}     # node id -> region code
        self._key_locations: Dict[str, Set[str]] = {}  # key -> region codes
        self.violations_blocked = 0

    # -- registry ------------------------------------------------------------------

    def register_region(self, region: Region) -> None:
        self.regions[region.code] = region

    def place_node(self, node_id: str, region_code: str) -> None:
        if region_code not in self.regions:
            raise LocationViolationError(f"unknown region {region_code!r}")
        self._node_region[node_id] = region_code

    def has_node(self, node_id: str) -> bool:
        """Has ``node_id`` been placed in a region?  (The GDPR store
        uses this to avoid re-placing a pre-configured node.)"""
        return node_id in self._node_region

    def node_region(self, node_id: str) -> str:
        region = self._node_region.get(node_id)
        if region is None:
            raise LocationViolationError(
                f"node {node_id!r} has no declared region")
        return region

    # -- enforcement -----------------------------------------------------------------

    def check_placement(self, metadata: GDPRMetadata,
                        region_code: str) -> None:
        """Raise unless ``metadata`` may be stored in ``region_code``.

        Empty ``allowed_regions`` means "any adequate region".
        """
        region = self.regions.get(region_code)
        if region is None:
            raise LocationViolationError(f"unknown region {region_code!r}")
        if metadata.allowed_regions:
            if region_code not in metadata.allowed_regions:
                self.violations_blocked += 1
                raise LocationViolationError(
                    f"record owned by {metadata.owner!r} may not be "
                    f"stored in {region_code!r} (allowed: "
                    f"{sorted(metadata.allowed_regions)})")
        elif not region.adequate:
            self.violations_blocked += 1
            raise LocationViolationError(
                f"region {region_code!r} lacks an adequacy decision and "
                f"the record does not whitelist it")

    # -- tracking --------------------------------------------------------------------

    def record_stored(self, key: str, region_code: str) -> None:
        self._key_locations.setdefault(key, set()).add(region_code)

    def record_erased(self, key: str,
                      region_code: Optional[str] = None) -> None:
        locations = self._key_locations.get(key)
        if locations is None:
            return
        if region_code is None:
            del self._key_locations[key]
        else:
            locations.discard(region_code)
            if not locations:
                del self._key_locations[key]

    def locations_of(self, key: str) -> List[str]:
        return sorted(self._key_locations.get(key, ()))

    def keys_in_region(self, region_code: str) -> List[str]:
        return sorted(key for key, regions in self._key_locations.items()
                      if region_code in regions)
