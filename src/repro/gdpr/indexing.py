"""Secondary metadata indexes (GDPR Art. 15, 20, 21; paper section 5.1).

GDPR repeatedly needs *groups* of records: everything owned by a subject
(access, erasure, portability), everything processable under a purpose
(purpose limitation, objections), everything shared with a recipient.
Key-value stores have no native secondary indexes -- the paper names
"efficient metadata indexing" a research challenge -- so the GDPR layer
maintains its own inverted indexes, updated transactionally with each put
and delete, plus an expiry index ordered by deadline.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .metadata import GDPRMetadata


class MetadataIndex:
    """Inverted indexes over record metadata.

    All lookups are O(result); updates are O(#attributes).  The index is
    authoritative only in memory -- after a restart it is rebuilt from a
    keyspace scan (see ``GDPRStore.rebuild_indexes``), which is itself the
    honest cost of bolting indexing onto an index-free substrate.
    """

    def __init__(self) -> None:
        self._by_owner: Dict[str, Set[str]] = {}
        self._by_purpose: Dict[str, Set[str]] = {}
        self._by_recipient: Dict[str, Set[str]] = {}
        self._objections: Dict[str, Set[str]] = {}
        self._expiry_heap: List[Tuple[float, str]] = []
        self._expiry: Dict[str, float] = {}
        self._metadata: Dict[str, GDPRMetadata] = {}

    # -- maintenance ---------------------------------------------------------------

    def add(self, key: str, metadata: GDPRMetadata) -> None:
        if key in self._metadata:
            self.remove(key)
        self._metadata[key] = metadata
        self._by_owner.setdefault(metadata.owner, set()).add(key)
        for purpose in metadata.purposes:
            self._by_purpose.setdefault(purpose, set()).add(key)
        for purpose in metadata.objections:
            self._objections.setdefault(purpose, set()).add(key)
        for recipient in metadata.shared_with:
            self._by_recipient.setdefault(recipient, set()).add(key)
        deadline = metadata.expire_at()
        if deadline is not None:
            self._expiry[key] = deadline
            heapq.heappush(self._expiry_heap, (deadline, key))

    def remove(self, key: str) -> Optional[GDPRMetadata]:
        metadata = self._metadata.pop(key, None)
        if metadata is None:
            return None
        self._discard(self._by_owner, metadata.owner, key)
        for purpose in metadata.purposes:
            self._discard(self._by_purpose, purpose, key)
        for purpose in metadata.objections:
            self._discard(self._objections, purpose, key)
        for recipient in metadata.shared_with:
            self._discard(self._by_recipient, recipient, key)
        self._expiry.pop(key, None)  # heap entry lazily invalidated
        return metadata

    @staticmethod
    def _discard(table: Dict[str, Set[str]], attr: str, key: str) -> None:
        bucket = table.get(attr)
        if bucket is not None:
            bucket.discard(key)
            if not bucket:
                del table[attr]

    def clear(self) -> None:
        self.__init__()

    # -- queries -----------------------------------------------------------------------

    def get_metadata(self, key: str) -> Optional[GDPRMetadata]:
        return self._metadata.get(key)

    def keys(self) -> List[str]:
        """Every indexed key (the GDPR layer's view of the keyspace);
        slot migration scans this to find a slot's resident records."""
        return list(self._metadata)

    def __contains__(self, key: str) -> bool:
        return key in self._metadata

    def __len__(self) -> int:
        return len(self._metadata)

    def keys_of_owner(self, owner: str) -> List[str]:
        return sorted(self._by_owner.get(owner, ()))

    def keys_for_purpose(self, purpose: str) -> List[str]:
        """Keys whitelisted for ``purpose`` minus those objecting to it."""
        allowed = self._by_purpose.get(purpose, set())
        objected = self._objections.get(purpose, set())
        return sorted(allowed - objected)

    def keys_shared_with(self, recipient: str) -> List[str]:
        return sorted(self._by_recipient.get(recipient, ()))

    def owners(self) -> List[str]:
        return sorted(self._by_owner)

    def purposes(self) -> List[str]:
        return sorted(self._by_purpose)

    def expired_keys(self, now: float) -> List[str]:
        """Keys past their deadline, cheapest-first (heap order)."""
        out = []
        while self._expiry_heap and self._expiry_heap[0][0] <= now:
            deadline, key = heapq.heappop(self._expiry_heap)
            if self._expiry.get(key) == deadline:
                out.append(key)
                del self._expiry[key]
        return out

    def next_deadline(self) -> Optional[float]:
        while self._expiry_heap:
            deadline, key = self._expiry_heap[0]
            if self._expiry.get(key) == deadline:
                return deadline
            heapq.heappop(self._expiry_heap)
        return None

    def rebuild(self, entries: Iterable[Tuple[str, GDPRMetadata]]) -> int:
        """Reconstruct from a scan; returns entries indexed."""
        self.clear()
        count = 0
        for key, metadata in entries:
            self.add(key, metadata)
            count += 1
        return count


class WriteBehindIndexer:
    """Deferred compliance maintenance: a dirty-set flushed off-path.

    The fast-GDPR mode enqueues per-write follow-up work here (engine
    metadata annotation, TTL registration on engines without fused
    SET-with-expiry, storage-location bookkeeping) instead of paying it
    inside the client-visible operation.  A recurring daemon event on the
    scheduler drains the dirty-set every ``interval`` seconds; consumers
    that need a current view (subject access, index rebuild, shutdown)
    call :meth:`flush` first -- the visibility-window trade-off is the
    whole point, and it is bounded by ``interval``.

    Only the *latest* entry per key survives coalescing, which is exactly
    the write-behind win: a hot key rewritten many times per interval
    costs one deferred apply, not many.
    """

    def __init__(self, apply_fn: Callable[[str, object], None],
                 clock=None, interval: float = 0.1,
                 auto_timer: bool = True) -> None:
        self._apply = apply_fn
        self.clock = clock
        self.interval = interval
        self._pending: Dict[str, object] = {}
        self._timer_handle = None
        self._last_flush = clock.now() if clock is not None else 0.0
        self.flushes = 0
        self.applied = 0
        self.coalesced = 0
        if auto_timer:
            self._maybe_start_timer()

    def _maybe_start_timer(self) -> None:
        if self.clock is None or self.interval <= 0:
            return
        schedule = getattr(self.clock, "schedule_after", None)
        if schedule is None:
            return

        def fire() -> None:
            self.flush()
            self._timer_handle = self.clock.schedule_after(
                self.interval, fire, label="gdpr-writebehind", daemon=True)

        self._timer_handle = schedule(self.interval, fire,
                                      label="gdpr-writebehind", daemon=True)

    def stop_timer(self) -> None:
        if self._timer_handle is not None:
            cancel = getattr(self._timer_handle, "cancel", None)
            if cancel is not None:
                cancel()
            self._timer_handle = None

    def enqueue(self, key: str, work: object) -> None:
        if key in self._pending:
            self.coalesced += 1
        self._pending[key] = work

    def discard(self, key: str) -> bool:
        """Drop pending work for ``key`` (it was deleted before the flush
        -- applying stale maintenance to a dead key would resurrect
        state)."""
        return self._pending.pop(key, None) is not None

    @property
    def pending(self) -> int:
        return len(self._pending)

    def flush(self) -> int:
        """Apply all pending work in enqueue order; returns entries
        applied."""
        if self.clock is not None:
            self._last_flush = self.clock.now()
        if not self._pending:
            return 0
        batch = self._pending
        self._pending = {}
        for key, work in batch.items():
            self._apply(key, work)
        self.flushes += 1
        self.applied += len(batch)
        return len(batch)

    def maybe_flush(self, now: float) -> int:
        """Interval-gated flush for tick-driven drivers (the fallback
        when the clock cannot schedule daemon events)."""
        if now - self._last_flush < self.interval:
            return 0
        self._last_flush = now
        return self.flush()
