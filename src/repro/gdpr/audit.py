"""Tamper-evident audit logging (GDPR Art. 30, 5.2, 33).

Every interaction with personal data -- data path and control path alike --
becomes an :class:`AuditRecord` appended to an :class:`AuditLog`.  Records
are hash-chained (each digest commits to its predecessor), so truncation or
editing is detectable: the accountability requirement of Art. 5.2.

The log exposes the same durability spectrum the paper measures for AOF
logging, because it *is* the same mechanism:

* ``SYNC``    -- flush + fsync per record: strict real-time compliance,
  the configuration that costs Redis 20x;
* ``BATCH``   -- group-commit every ``batch_interval`` seconds (the paper's
  "storing the monitoring logs in a batch (say, once every second)" that
  recovers 6x while risking one interval of records);
* ``ASYNC``   -- write()s without fsync; the OS decides.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..common.clock import Clock, SimClock
from ..common.errors import AuditError
from ..common.hashing import GENESIS_HASH, chain_hash
from ..device.append_log import AppendLog


class AuditDurability(enum.Enum):
    SYNC = "sync"
    BATCH = "batch"
    ASYNC = "async"


@dataclass(frozen=True)
class AuditRecord:
    """One interaction with personal data."""

    seq: int
    timestamp: float
    principal: str
    operation: str          # get/put/delete/expire/export/erase/policy...
    key: Optional[str]
    subject: Optional[str]  # owning data subject, when known
    purpose: Optional[str]
    outcome: str            # "ok" | "denied" | "error"
    detail: str = ""
    prev_hash: str = ""
    record_hash: str = ""

    def payload(self) -> bytes:
        """The hashed/serialized body (everything except the chain)."""
        body = {
            "seq": self.seq,
            "ts": round(self.timestamp, 9),
            "principal": self.principal,
            "op": self.operation,
            "key": self.key,
            "subject": self.subject,
            "purpose": self.purpose,
            "outcome": self.outcome,
            "detail": self.detail,
        }
        return json.dumps(body, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def to_line(self) -> bytes:
        envelope = {
            "body": self.payload().decode("utf-8"),
            "prev": self.prev_hash,
            "hash": self.record_hash,
        }
        return json.dumps(envelope, sort_keys=True,
                          separators=(",", ":")).encode("utf-8") + b"\n"

    @classmethod
    def from_line(cls, line: bytes) -> "AuditRecord":
        try:
            envelope = json.loads(line.decode("utf-8"))
            body = json.loads(envelope["body"])
        except (json.JSONDecodeError, KeyError, UnicodeDecodeError) as exc:
            raise AuditError(f"corrupt audit line: {exc}") from exc
        return cls(
            seq=body["seq"], timestamp=body["ts"],
            principal=body["principal"], operation=body["op"],
            key=body["key"], subject=body["subject"],
            purpose=body["purpose"], outcome=body["outcome"],
            detail=body.get("detail", ""),
            prev_hash=envelope["prev"], record_hash=envelope["hash"])


class AuditLog:
    """Hash-chained audit trail over an append-only log device."""

    def __init__(self, log: Optional[AppendLog] = None,
                 clock: Optional[Clock] = None,
                 durability: AuditDurability = AuditDurability.SYNC,
                 batch_interval: float = 1.0,
                 record_cpu_cost: float = 0.0) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.log = log if log is not None else AppendLog(clock=self.clock)
        self.durability = durability
        self.batch_interval = batch_interval
        self.record_cpu_cost = record_cpu_cost
        self._seq = 0
        self._tip = GENESIS_HASH
        self._last_sync = self.clock.now()
        self._memory: List[AuditRecord] = []

    # -- appending -----------------------------------------------------------------

    def append(self, principal: str, operation: str,
               key: Optional[str] = None, subject: Optional[str] = None,
               purpose: Optional[str] = None, outcome: str = "ok",
               detail: str = "") -> AuditRecord:
        record = AuditRecord(
            seq=self._seq, timestamp=self.clock.now(),
            principal=principal, operation=operation, key=key,
            subject=subject, purpose=purpose, outcome=outcome,
            detail=detail, prev_hash=self._tip, record_hash="")
        digest = chain_hash(self._tip, record.payload())
        record = dataclasses.replace(record, record_hash=digest)
        if self.record_cpu_cost:
            self.clock.advance(self.record_cpu_cost)
        self.log.append(record.to_line())
        self._seq += 1
        self._tip = digest
        self._memory.append(record)
        if self.durability is AuditDurability.SYNC:
            self.log.flush_and_fsync()
            self._last_sync = self.clock.now()
        elif self.durability is AuditDurability.ASYNC:
            self.log.flush()
        else:
            self.log.flush()
            self.tick(self.clock.now())
        return record

    def tick(self, now: float) -> None:
        """Group commit for BATCH durability."""
        if (self.durability is AuditDurability.BATCH
                and now - self._last_sync >= self.batch_interval):
            self.log.flush()
            self.log.fsync()
            self._last_sync = now

    # -- reading & verification ---------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self._seq

    def records(self) -> List[AuditRecord]:
        """All records appended in this process (in-memory view)."""
        return list(self._memory)

    def records_for_subject(self, subject: str) -> List[AuditRecord]:
        return [r for r in self._memory if r.subject == subject]

    def records_between(self, start: float,
                        end: float) -> List[AuditRecord]:
        return [r for r in self._memory if start <= r.timestamp <= end]

    def at_risk_records(self) -> int:
        """Records not yet durable -- what a power loss loses right now.

        This quantifies the paper's everysec trade-off: "exposing it to
        the risk of losing one second worth of logs".
        """
        durable = self.log.read_durable()
        durable_lines = durable.count(b"\n")
        return self._seq - durable_lines

    @staticmethod
    def parse(data: bytes) -> List[AuditRecord]:
        records = []
        for line in data.splitlines():
            if line:
                records.append(AuditRecord.from_line(line))
        return records

    @classmethod
    def verify_chain(cls, records: Iterable[AuditRecord]) -> int:
        """Verify the hash chain; returns the number of records verified.

        Raises :class:`AuditError` on the first broken link -- a truncated,
        edited, or reordered log fails here.
        """
        tip = GENESIS_HASH
        count = 0
        expected_seq = None
        for record in records:
            if expected_seq is None:
                expected_seq = record.seq
            if record.seq != expected_seq:
                raise AuditError(
                    f"sequence gap: expected {expected_seq}, "
                    f"found {record.seq}")
            if record.prev_hash != tip:
                raise AuditError(
                    f"chain break at seq {record.seq}: prev hash mismatch")
            digest = chain_hash(tip, record.payload())
            if digest != record.record_hash:
                raise AuditError(
                    f"record {record.seq} hash mismatch (tampered)")
            tip = digest
            expected_seq += 1
            count += 1
        return count

    def verify_durable(self) -> int:
        """Parse + verify what is durably on the device."""
        return self.verify_chain(self.parse(self.log.read_durable()))
