"""Tamper-evident audit logging (GDPR Art. 30, 5.2, 33).

Every interaction with personal data -- data path and control path alike --
becomes an :class:`AuditRecord` appended to an :class:`AuditLog`.  Records
are hash-chained so truncation or editing is detectable: the accountability
requirement of Art. 5.2.  Two chain granularities exist:

* **record mode** (default) -- each record's digest commits to its
  predecessor and the record is written (and, under SYNC, fsync'd) on its
  own: strict real-time compliance, the configuration that costs Redis 20x;
* **block mode** (the fast-GDPR path) -- records buffer in memory and are
  sealed into :class:`AuditBlock`\\ s of up to ``block_size`` members (or
  whenever ``batch_interval`` elapses).  One chain update covers the whole
  block: the block header commits to the previous block's hash plus a
  running digest over the member payloads, and the sealed block is
  group-committed with a single flush+fsync.  Tamper evidence is
  preserved -- editing a member breaks the member digest, editing the
  header breaks the block hash, reordering breaks the prev linkage --
  while the fsync cost is amortized over ``block_size`` records.  The
  price is a visibility window: a crash loses at most one unsealed block.

The per-record durability spectrum mirrors the paper's AOF measurement,
because it *is* the same mechanism:

* ``SYNC``    -- flush + fsync per record;
* ``BATCH``   -- group-commit every ``batch_interval`` seconds (the paper's
  "storing the monitoring logs in a batch (say, once every second)" that
  recovers 6x while risking one interval of records);
* ``ASYNC``   -- write()s without fsync; the OS decides.

On a scheduling clock (:class:`~repro.common.clock.SimClock`) the log
registers a recurring *daemon* timer so BATCH group commit and block
sealing fire every ``batch_interval`` even when no traffic arrives -- a
quiescent log never leaves at-risk records unsynced forever.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from ..common.clock import Clock, SimClock
from ..common.errors import AuditError
from ..common.hashing import GENESIS_HASH, chain_hash
from ..device.append_log import AppendLog


class AuditDurability(enum.Enum):
    SYNC = "sync"
    BATCH = "batch"
    ASYNC = "async"


class AuditChainMode(enum.Enum):
    RECORD = "record"   # per-record chain, per-record durability
    BLOCK = "block"     # sealed blocks, one chain update + fsync per block


@dataclass(frozen=True)
class AuditRecord:
    """One interaction with personal data."""

    seq: int
    timestamp: float
    principal: str
    operation: str          # get/put/delete/expire/export/erase/policy...
    key: Optional[str]
    subject: Optional[str]  # owning data subject, when known
    purpose: Optional[str]
    outcome: str            # "ok" | "denied" | "error"
    detail: str = ""
    prev_hash: str = ""     # empty in block mode (the block carries the chain)
    record_hash: str = ""

    def payload(self) -> bytes:
        """The hashed/serialized body (everything except the chain)."""
        body = {
            "seq": self.seq,
            "ts": round(self.timestamp, 9),
            "principal": self.principal,
            "op": self.operation,
            "key": self.key,
            "subject": self.subject,
            "purpose": self.purpose,
            "outcome": self.outcome,
            "detail": self.detail,
        }
        return json.dumps(body, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def to_line(self) -> bytes:
        envelope = {
            "body": self.payload().decode("utf-8"),
            "prev": self.prev_hash,
            "hash": self.record_hash,
        }
        return json.dumps(envelope, sort_keys=True,
                          separators=(",", ":")).encode("utf-8") + b"\n"

    @classmethod
    def from_body(cls, body: dict, prev_hash: str = "",
                  record_hash: str = "") -> "AuditRecord":
        try:
            return cls(
                seq=body["seq"], timestamp=body["ts"],
                principal=body["principal"], operation=body["op"],
                key=body["key"], subject=body["subject"],
                purpose=body["purpose"], outcome=body["outcome"],
                detail=body.get("detail", ""),
                prev_hash=prev_hash, record_hash=record_hash)
        except (KeyError, TypeError) as exc:
            raise AuditError(f"corrupt audit body: {exc}") from exc

    @classmethod
    def from_line(cls, line: bytes) -> "AuditRecord":
        try:
            envelope = json.loads(line.decode("utf-8"))
            body = json.loads(envelope["body"])
        except (json.JSONDecodeError, KeyError, UnicodeDecodeError) as exc:
            raise AuditError(f"corrupt audit line: {exc}") from exc
        return cls.from_body(body, prev_hash=envelope["prev"],
                             record_hash=envelope["hash"])


# Seed of the per-block running member digest (distinct from the block
# chain's genesis so a digest can never be confused for a block hash).
BLOCK_DIGEST_SEED = chain_hash(GENESIS_HASH, b"repro-audit-block-digest")


@dataclass(frozen=True)
class AuditBlock:
    """A sealed run of audit records committed by one chain update.

    ``digest`` is the running hash over the member payloads (seeded from
    :data:`BLOCK_DIGEST_SEED`); ``block_hash`` chains ``prev_hash`` with
    the serialized header, so the chain commits to every member byte.
    """

    first_seq: int
    count: int
    sealed_at: float
    prev_hash: str
    digest: str
    block_hash: str
    member_bodies: List[str]    # member payload() strings, in seq order

    def header_payload(self) -> bytes:
        header = {
            "first": self.first_seq,
            "count": self.count,
            "sealed_at": round(self.sealed_at, 9),
            "digest": self.digest,
        }
        return json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def to_line(self) -> bytes:
        envelope = {
            "type": "blk",
            "first": self.first_seq,
            "count": self.count,
            "sealed_at": round(self.sealed_at, 9),
            "digest": self.digest,
            "prev": self.prev_hash,
            "hash": self.block_hash,
            "members": self.member_bodies,
        }
        return json.dumps(envelope, sort_keys=True,
                          separators=(",", ":")).encode("utf-8") + b"\n"

    @classmethod
    def from_line(cls, line: bytes) -> "AuditBlock":
        try:
            envelope = json.loads(line.decode("utf-8"))
            if envelope.get("type") != "blk":
                raise KeyError("type")
            return cls(
                first_seq=envelope["first"], count=envelope["count"],
                sealed_at=envelope["sealed_at"],
                prev_hash=envelope["prev"], digest=envelope["digest"],
                block_hash=envelope["hash"],
                member_bodies=list(envelope["members"]))
        except (json.JSONDecodeError, KeyError, TypeError,
                UnicodeDecodeError) as exc:
            raise AuditError(f"corrupt audit block line: {exc}") from exc

    def records(self) -> List[AuditRecord]:
        out = []
        for body_str in self.member_bodies:
            try:
                body = json.loads(body_str)
            except json.JSONDecodeError as exc:
                raise AuditError(
                    f"corrupt member body in block at seq "
                    f"{self.first_seq}: {exc}") from exc
            out.append(AuditRecord.from_body(body))
        return out

    @staticmethod
    def members_digest(member_bodies: Iterable[str]) -> str:
        digest = BLOCK_DIGEST_SEED
        for body in member_bodies:
            digest = chain_hash(digest, body.encode("utf-8"))
        return digest


def _looks_like_block(line: bytes) -> bool:
    return line.startswith(b'{"count"') or b'"type":"blk"' in line[:200]


class AuditLog:
    """Hash-chained audit trail over an append-only log device."""

    def __init__(self, log: Optional[AppendLog] = None,
                 clock: Optional[Clock] = None,
                 durability: AuditDurability = AuditDurability.SYNC,
                 batch_interval: float = 1.0,
                 record_cpu_cost: float = 0.0,
                 chain_mode: AuditChainMode = AuditChainMode.RECORD,
                 block_size: int = 64,
                 memory_window: Optional[int] = None,
                 auto_timer: bool = True) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.log = log if log is not None else AppendLog(clock=self.clock)
        self.durability = durability
        self.batch_interval = batch_interval
        self.record_cpu_cost = record_cpu_cost
        if isinstance(chain_mode, str):
            chain_mode = AuditChainMode(chain_mode)
        self.chain_mode = chain_mode
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size
        if memory_window is not None and memory_window < 1:
            raise ValueError("memory_window must be >= 1 (or None)")
        self.memory_window = memory_window
        self._seq = 0
        self._tip = GENESIS_HASH            # record-mode chain tip
        self._block_tip = GENESIS_HASH      # block-mode chain tip
        self._blocks_sealed = 0
        self._sealed_records = 0            # records inside sealed blocks
        self._durable_records = 0           # incrementally tracked at fsyncs
        self._last_sync = self.clock.now()
        self._last_seal = self.clock.now()
        # Bounded in-memory window + per-subject index (recent evidence).
        self._memory: List[AuditRecord] = []
        self._mem_start_seq = 0
        self._by_subject: Dict[str, Deque[AuditRecord]] = {}
        self._pending_block: List[AuditRecord] = []
        self._timer_handle = None
        if auto_timer:
            self._maybe_start_timer()

    # -- background group commit ---------------------------------------------------

    def _needs_timer(self) -> bool:
        return (self.batch_interval > 0
                and (self.durability is AuditDurability.BATCH
                     or self.chain_mode is AuditChainMode.BLOCK))

    def _maybe_start_timer(self) -> None:
        """Register a recurring daemon event so group commit fires every
        ``batch_interval`` even with no traffic (a quiescent log must not
        leave at-risk records unsynced forever).  No-op on clocks that
        cannot schedule; daemon events never keep ``run_until_idle``
        alive by themselves, exactly like the expiry cron."""
        if not self._needs_timer():
            return
        if self._timer_handle is not None and self._timer_handle.active:
            return
        schedule = getattr(self.clock, "schedule_after", None)
        if schedule is None:
            return

        def fire() -> None:
            self.tick(self.clock.now())
            self._timer_handle = self.clock.schedule_after(
                self.batch_interval, fire, label="audit-groupcommit",
                daemon=True)

        self._timer_handle = schedule(self.batch_interval, fire,
                                      label="audit-groupcommit",
                                      daemon=True)

    def stop_timer(self) -> None:
        if self._timer_handle is not None:
            cancel = getattr(self._timer_handle, "cancel", None)
            if cancel is not None:
                cancel()
            self._timer_handle = None

    # -- appending -----------------------------------------------------------------

    def append(self, principal: str, operation: str,
               key: Optional[str] = None, subject: Optional[str] = None,
               purpose: Optional[str] = None, outcome: str = "ok",
               detail: str = "") -> AuditRecord:
        record = AuditRecord(
            seq=self._seq, timestamp=self.clock.now(),
            principal=principal, operation=operation, key=key,
            subject=subject, purpose=purpose, outcome=outcome,
            detail=detail, prev_hash="", record_hash="")
        if self.chain_mode is AuditChainMode.BLOCK:
            self._seq += 1
            self._remember(record)
            self._pending_block.append(record)
            if len(self._pending_block) >= self.block_size:
                self.seal_block()
            return record
        record = dataclasses.replace(record, prev_hash=self._tip)
        digest = chain_hash(self._tip, record.payload())
        record = dataclasses.replace(record, record_hash=digest)
        if self.record_cpu_cost:
            self.clock.advance(self.record_cpu_cost)
        self.log.append(record.to_line())
        self._seq += 1
        self._tip = digest
        self._remember(record)
        if self.durability is AuditDurability.SYNC:
            self.log.flush_and_fsync()
            self._last_sync = self.clock.now()
            self._durable_records = self._seq
        elif self.durability is AuditDurability.ASYNC:
            self.log.flush()
        else:
            self.log.flush()
            self.tick(self.clock.now())
        return record

    def _remember(self, record: AuditRecord) -> None:
        self._memory.append(record)
        if record.subject is not None:
            self._by_subject.setdefault(
                record.subject, deque()).append(record)
        if self.memory_window is not None:
            excess = len(self._memory) - self.memory_window
            if excess > 0:
                for old in self._memory[:excess]:
                    if old.subject is not None:
                        bucket = self._by_subject.get(old.subject)
                        if bucket:
                            bucket.popleft()    # evictions are oldest-first
                            if not bucket:
                                del self._by_subject[old.subject]
                del self._memory[:excess]
                self._mem_start_seq += excess

    def seal_block(self) -> Optional[AuditBlock]:
        """Seal the pending records into one block and group-commit it.

        One chain update and one flush+fsync cover every member -- the
        amortization the paper's batched-monitoring suggestion asks for.
        Returns the sealed block, or None when nothing is pending.
        """
        if self.chain_mode is not AuditChainMode.BLOCK:
            raise AuditError("seal_block requires block chain mode")
        if not self._pending_block:
            return None
        members = self._pending_block
        self._pending_block = []
        bodies = [m.payload().decode("utf-8") for m in members]
        digest = AuditBlock.members_digest(bodies)
        block = AuditBlock(
            first_seq=members[0].seq, count=len(members),
            sealed_at=self.clock.now(), prev_hash=self._block_tip,
            digest=digest, block_hash="", member_bodies=bodies)
        block_hash = chain_hash(self._block_tip, block.header_payload())
        block = dataclasses.replace(block, block_hash=block_hash)
        # The chain advances at seal time; if the group commit below is
        # lost (crash between seal and fsync) the durable log is missing
        # a block the chain already committed to -- verify_durable flags
        # the shortfall.
        self._block_tip = block_hash
        self._blocks_sealed += 1
        self._sealed_records += block.count
        if self.record_cpu_cost:
            self.clock.advance(self.record_cpu_cost)
        self.log.append(block.to_line())
        self.log.flush()
        self.log.fsync()
        self._durable_records = self._sealed_records
        self._last_sync = self.clock.now()
        self._last_seal = self.clock.now()
        return block

    def tick(self, now: float) -> None:
        """Group commit: BATCH fsync, or block sealing on interval."""
        if self.chain_mode is AuditChainMode.BLOCK:
            if (self._pending_block
                    and now - self._last_seal >= self.batch_interval):
                self.seal_block()
            return
        if (self.durability is AuditDurability.BATCH
                and now - self._last_sync >= self.batch_interval):
            self.log.flush()
            self.log.fsync()
            self._last_sync = now
            self._durable_records = self._seq

    def sync(self) -> None:
        """Force everything appended so far durable (end-of-run barrier):
        seals any pending block, then flushes+fsyncs the device."""
        if self.chain_mode is AuditChainMode.BLOCK:
            self.seal_block()      # seal is itself a group commit
            self._durable_records = self._sealed_records
        else:
            if self.log.unflushed_bytes or self.log.unsynced_bytes:
                self.log.flush_and_fsync()
            self._durable_records = self._seq
        self._last_sync = self.clock.now()

    # -- reading -------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self._seq

    @property
    def blocks_sealed(self) -> int:
        return self._blocks_sealed

    @property
    def pending_records(self) -> int:
        """Records appended but not yet sealed (block mode only)."""
        return len(self._pending_block)

    def records(self) -> List[AuditRecord]:
        """Records appended in this process, within the in-memory window
        (all of them when ``memory_window`` is None, the default)."""
        return list(self._memory)

    def records_for_subject(self, subject: str) -> List[AuditRecord]:
        """O(result): served from the per-subject index."""
        return list(self._by_subject.get(subject, ()))

    def records_between(self, start: float,
                        end: float) -> List[AuditRecord]:
        """O(log n + result): timestamps are appended monotonically, so
        the window is a bisected slice."""
        lo = bisect.bisect_left(self._memory, start,
                                key=lambda r: r.timestamp)
        hi = bisect.bisect_right(self._memory, end,
                                 key=lambda r: r.timestamp)
        return self._memory[lo:hi]

    def checkpoint(self) -> int:
        """Drop the in-memory window (records stay on the device).

        Long open-loop runs call this to bound memory; returns records
        released.  Pending (unsealed) block members are retained by the
        seal path and remain durable once sealed."""
        dropped = len(self._memory)
        self._memory = []
        self._by_subject = {}
        self._mem_start_seq = self._seq
        return dropped

    def at_risk_records(self) -> int:
        """Records not yet durable -- what a power loss loses right now.

        This quantifies the paper's everysec trade-off: "exposing it to
        the risk of losing one second worth of logs".  O(1): the durable
        record count is tracked incrementally at fsync points instead of
        re-reading the durable log.
        """
        return self._seq - self._durable_records

    # -- parsing & verification ----------------------------------------------------

    @staticmethod
    def parse(data: bytes) -> List[AuditRecord]:
        """Parse serialized records; block lines expand to their members."""
        records = []
        for line in data.splitlines():
            if not line:
                continue
            if _looks_like_block(line):
                records.extend(AuditBlock.from_line(line).records())
            else:
                records.append(AuditRecord.from_line(line))
        return records

    @staticmethod
    def parse_blocks(data: bytes) -> List[AuditBlock]:
        return [AuditBlock.from_line(line)
                for line in data.splitlines() if line]

    @classmethod
    def verify_chain(cls, records: Iterable[AuditRecord]) -> int:
        """Verify the per-record hash chain; returns records verified.

        Raises :class:`AuditError` on the first broken link -- a truncated,
        edited, or reordered log fails here.  A window that starts past
        seq 0 (a bounded in-memory view) anchors at its first record's
        ``prev_hash`` and verifies internal consistency from there.
        """
        tip = GENESIS_HASH
        count = 0
        expected_seq = None
        for record in records:
            if expected_seq is None:
                expected_seq = record.seq
                if record.seq != 0:
                    tip = record.prev_hash
            if record.seq != expected_seq:
                raise AuditError(
                    f"sequence gap: expected {expected_seq}, "
                    f"found {record.seq}")
            if record.prev_hash != tip:
                raise AuditError(
                    f"chain break at seq {record.seq}: prev hash mismatch")
            digest = chain_hash(tip, record.payload())
            if digest != record.record_hash:
                raise AuditError(
                    f"record {record.seq} hash mismatch (tampered)")
            tip = digest
            expected_seq += 1
            count += 1
        return count

    @classmethod
    def verify_blocks(cls, blocks: Iterable[AuditBlock]) -> int:
        """Verify a sealed-block chain; returns member records verified.

        Each block must link to its predecessor, its member digest must
        recompute from the member payloads, its hash must recompute from
        the header, and member sequence numbers must run contiguously --
        a tampered member, edited header, or reordered/removed block all
        fail.
        """
        tip = GENESIS_HASH
        expected_seq = None
        count = 0
        for block in blocks:
            if expected_seq is None:
                expected_seq = block.first_seq
            if block.first_seq != expected_seq:
                raise AuditError(
                    f"block sequence gap: expected {expected_seq}, "
                    f"found {block.first_seq}")
            if block.prev_hash != tip:
                raise AuditError(
                    f"block chain break at seq {block.first_seq}: "
                    "prev hash mismatch")
            digest = AuditBlock.members_digest(block.member_bodies)
            if digest != block.digest:
                raise AuditError(
                    f"block at seq {block.first_seq}: member digest "
                    "mismatch (tampered member)")
            if len(block.member_bodies) != block.count:
                raise AuditError(
                    f"block at seq {block.first_seq}: member count "
                    "mismatch")
            recomputed = chain_hash(tip, block.header_payload())
            if recomputed != block.block_hash:
                raise AuditError(
                    f"block at seq {block.first_seq}: block hash "
                    "mismatch (tampered header)")
            for record in block.records():
                if record.seq != expected_seq:
                    raise AuditError(
                        f"member sequence gap inside block: expected "
                        f"{expected_seq}, found {record.seq}")
                expected_seq += 1
                count += 1
            tip = recomputed
        return count

    @classmethod
    def verify_block_bytes(cls, data: bytes) -> int:
        """Parse + verify serialized block lines (a torn final line --
        truncation mid-block -- fails the parse and raises)."""
        return cls.verify_blocks(cls.parse_blocks(data))

    def verify_durable(self) -> int:
        """Parse + verify what is durably on the device.

        In block mode this additionally requires every *sealed* block to
        be present: sealing advances the chain before the group commit,
        so a crash (or injected fault) between seal and fsync leaves the
        durable log short of the chain's commitments and fails here.
        """
        data = self.log.read_durable()
        if self.chain_mode is AuditChainMode.BLOCK:
            count = self.verify_block_bytes(data)
            if count < self._sealed_records:
                raise AuditError(
                    f"durable log holds {count} records but "
                    f"{self._sealed_records} were sealed: sealed "
                    "block(s) lost before fsync")
            return count
        return self.verify_chain(self.parse(data))

    def verify(self) -> int:
        """Verify this log's full chain in its own mode: the in-memory
        record chain (record mode) or every written block (block mode;
        pending unsealed records are not yet chain-committed)."""
        if self.chain_mode is AuditChainMode.BLOCK:
            return self.verify_blocks(self.parse_blocks(
                self.log.read_all()))
        return self.verify_chain(self.records())
