"""Retention policies: TTL as a policy criterion (GDPR Art. 5.1e).

Section 3.1 of the paper: "GDPR allows TTL to be either a static time or
a policy criterion that can be objectively evaluated."  The metadata
layer handles static TTLs; this module supplies the policy half:

* a :class:`RetentionPolicy` names a purpose and bounds how long data
  collected for it may live;
* a :class:`PolicyEngine` resolves a record's effective retention as the
  *minimum* bound across its declared purposes (storage limitation: data
  may not outlive any purpose it was collected for), audits policy
  changes, and can re-derive deadlines when a policy tightens.

The engine also supports *legal holds* -- the Art. 17(3) carve-outs
(e.g., legal obligations) that suspend erasure for named records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..common.errors import RetentionViolationError
from .metadata import GDPRMetadata


@dataclass(frozen=True)
class RetentionPolicy:
    """Retention bound for one processing purpose."""

    purpose: str
    max_retention: float          # seconds; data must be erased by then
    description: str = ""

    def __post_init__(self) -> None:
        if self.max_retention <= 0:
            raise ValueError("retention bound must be positive")


class PolicyEngine:
    """Resolves effective retention and validates record lifetimes."""

    def __init__(self, default_retention: Optional[float] = None) -> None:
        self._policies: Dict[str, RetentionPolicy] = {}
        self._legal_holds: Set[str] = set()
        self.default_retention = default_retention

    # -- policy administration ---------------------------------------------------

    def set_policy(self, policy: RetentionPolicy) -> None:
        self._policies[policy.purpose] = policy

    def remove_policy(self, purpose: str) -> bool:
        return self._policies.pop(purpose, None) is not None

    def policy_for(self, purpose: str) -> Optional[RetentionPolicy]:
        return self._policies.get(purpose)

    def policies(self) -> List[RetentionPolicy]:
        return [self._policies[p] for p in sorted(self._policies)]

    # -- legal holds (Art. 17(3)) ---------------------------------------------------

    def place_legal_hold(self, key: str) -> None:
        self._legal_holds.add(key)

    def release_legal_hold(self, key: str) -> bool:
        if key in self._legal_holds:
            self._legal_holds.remove(key)
            return True
        return False

    def is_held(self, key: str) -> bool:
        return key in self._legal_holds

    @property
    def held_keys(self) -> List[str]:
        return sorted(self._legal_holds)

    # -- resolution -----------------------------------------------------------------

    def effective_retention(self,
                            metadata: GDPRMetadata) -> Optional[float]:
        """The tightest bound across the record's purposes.

        A record collected for several purposes must honour the shortest
        applicable retention; purposes without a policy fall back to the
        engine default (None = unbounded for that purpose).
        """
        bounds = []
        for purpose in metadata.purposes:
            policy = self._policies.get(purpose)
            if policy is not None:
                bounds.append(policy.max_retention)
            elif self.default_retention is not None:
                bounds.append(self.default_retention)
        if metadata.ttl is not None:
            bounds.append(metadata.ttl)
        if not bounds:
            return None
        return min(bounds)

    def validate(self, metadata: GDPRMetadata) -> None:
        """Reject records whose declared TTL exceeds any policy bound."""
        for purpose in metadata.purposes:
            policy = self._policies.get(purpose)
            if policy is None:
                continue
            if metadata.ttl is None:
                raise RetentionViolationError(
                    f"purpose {purpose!r} caps retention at "
                    f"{policy.max_retention}s but the record declares "
                    "no TTL")
            if metadata.ttl > policy.max_retention:
                raise RetentionViolationError(
                    f"declared TTL {metadata.ttl}s exceeds the "
                    f"{policy.max_retention}s bound for purpose "
                    f"{purpose!r}")

    def overdue(self, entries: Iterable[Tuple[str, GDPRMetadata]],
                now: float) -> List[str]:
        """Keys whose effective retention has lapsed (hold-aware).

        Drives policy-based sweeps: callers feed the metadata index's
        entries and erase what comes back.
        """
        out = []
        for key, metadata in entries:
            if key in self._legal_holds:
                continue
            bound = self.effective_retention(metadata)
            if bound is None:
                continue
            if metadata.created_at + bound <= now:
                out.append(key)
        return out
