"""Data-subject rights (GDPR Art. 15, 17, 20, 21) over a GDPRStore.

Each right is implemented as the paper's section 2.1 describes its storage
footprint:

* **Art. 15 right of access** -- a structured report of every record the
  subject owns, including purposes, recipients, retention, and use in
  automated decision-making.
* **Art. 17 right to be forgotten** -- erase all the subject's records
  "including all its replicas and backups": keyspace deletes, per-subject
  crypto-erasure, and (optionally) immediate AOF compaction so no deleted
  bytes persist in subsystems (the paper's section 4.3 concern).
* **Art. 20 right to data portability** -- export in a commonly used
  format (JSON or CSV here).
* **Art. 21 right to object** -- blacklist a purpose across all of the
  subject's records, effective for every subsequent read.

Every right here operates on **one** :class:`GDPRStore`; the cluster
layer's :class:`~repro.cluster.sharded_store.ShardedGDPRStore` composes
them across shards.  The cross-shard invariants that composition relies
on:

* **Audit evidence is local.**  Each function appends to *this* store's
  hash-chained audit log; fan-out therefore leaves one record per shard
  touched, never a cross-shard record (chains verify per shard).
* **Erasure fan-out covers every copy.**  ``right_to_erasure`` erases
  the keys *this* shard indexes.  During a live slot migration both the
  source and the importing target index the same key, so the cluster
  calls it on both -- and the migration layer cascades source deletes to
  target shadows, so whichever runs first, no copy survives.  The
  crypto-erasure step voids the subject's ciphertexts globally (one
  shared keystore) even where AOF bytes linger.
* **CROSSSLOT does not apply here.**  Rights operate per key via the
  store facade, not via multi-key commands, so a subject's records may
  span arbitrarily many slots and shards.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import UnknownSubjectError
from ..kvstore.aof import contains_key
from .access_control import Operation, Principal
from .metadata import GDPRMetadata
from .store import CONTROLLER, GDPRStore


@dataclass
class AccessReport:
    """Art. 15 response."""

    subject: str
    generated_at: float
    records: List[dict] = field(default_factory=list)
    purposes: List[str] = field(default_factory=list)
    recipients: List[str] = field(default_factory=list)
    automated_decision_keys: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    def to_json(self) -> str:
        return json.dumps(self.__dict__, sort_keys=True, indent=2)


@dataclass
class ErasureReceipt:
    """Art. 17 response: proof of what was erased, how fast, how deeply."""

    subject: str
    requested_at: float
    completed_at: float
    keys_erased: List[str]
    crypto_erased: bool
    log_compacted: bool
    residual_in_aof: bool   # deleted keys still visible in the AOF?
    #: Cold segments the erasure reached (tiered stores only): every
    #: archived ciphertext of the subject is void without a rewrite.
    cold_segments_voided: int = 0

    @property
    def duration(self) -> float:
        return self.completed_at - self.requested_at


def right_of_access(store: GDPRStore, subject: str,
                    principal: Optional[Principal] = None) -> AccessReport:
    """Art. 15: everything we hold about ``subject`` and how it is used."""
    if principal is None:
        principal = Principal.subject(subject)
    store.require_subject(subject)
    started = store.clock.now()
    report = AccessReport(subject=subject, generated_at=started)
    purposes = set()
    recipients = set()
    tiered = getattr(store.kv, "supports_tiering", False)
    cold_keys = set()
    if tiered:
        # Which of the subject's records live in the archive right now?
        # Answered from the per-subject segment blooms -- captured before
        # the reads below promote them.
        cold_keys = {k.decode("utf-8", "replace")
                     for k in store.kv.cold_keys_of_subject(subject)}
    for key in store.keys_of_subject(subject):
        record = store.get(key, principal=principal)
        meta = record.metadata
        purposes.update(meta.purposes)
        recipients.update(meta.shared_with)
        if meta.decision_making:
            report.automated_decision_keys.append(key)
        row = {
            "key": key,
            "purposes": sorted(meta.purposes),
            "objections": sorted(meta.objections),
            "recipients": sorted(meta.shared_with),
            "origin": meta.origin,
            "retention_seconds": meta.ttl,
            "stored_in": store.locations.locations_of(key),
            "value_bytes": len(record.value),
        }
        if tiered:
            row["tier"] = "cold" if key in cold_keys else "hot"
        report.records.append(row)
    report.purposes = sorted(purposes)
    report.recipients = sorted(recipients)
    report.elapsed = store.clock.now() - started
    store.audit.append(principal=principal.name, operation="access-report",
                       subject=store._audit_name(subject), outcome="ok",
                       detail=f"{len(report.records)} records")
    return report


def right_to_erasure(store: GDPRStore, subject: str,
                     principal: Optional[Principal] = None,
                     compact_log: Optional[bool] = None) -> ErasureReceipt:
    """Art. 17: erase the subject everywhere, without undue delay.

    Erasure depth is three layers:

    1. keyspace DELs (immediate inaccessibility),
    2. crypto-erasure of the subject's data key (voids AOF history,
       snapshots, and backups even where ciphertext bytes linger),
    3. optional AOF compaction so not even ciphertext persists
       (``compact_log`` defaults to the store's ``compact_on_erasure``).
    """
    if principal is None:
        principal = Principal.subject(subject)
    store.require_subject(subject)
    requested_at = store.clock.now()
    keys = store.keys_of_subject(subject)
    now = store.clock.now()
    meta_sample = store.index.get_metadata(keys[0]) if keys else None
    store.access.check(principal, Operation.DELETE, meta_sample, None, now)
    for key in keys:
        store.kv.execute("DEL", key)
    cold_voided = 0
    if getattr(store.kv, "supports_tiering", False):
        # The DELs above evicted every *indexed* cold copy; the subject
        # marker voids any archived stragglers and persists the erasure
        # on the cold device itself (fsynced), independent of the
        # keystore tombstone below.
        cold_voided = store.kv.erase_subject_cold(subject)
    crypto_erased = False
    if store.config.encrypt_at_rest:
        crypto_erased = store.keystore.erase_key(subject)
    if compact_log is None:
        compact_log = store.config.compact_on_erasure
    compacted = False
    if compact_log and store.kv.aof_log is not None:
        store.kv.rewrite_aof()
        compacted = True
    residual = False
    if store.kv.aof_log is not None:
        aof_bytes = store.kv.aof_log.read_all()
        residual = any(contains_key(aof_bytes, key.encode("utf-8"))
                       for key in keys)
    completed_at = store.clock.now()
    store.audit.append(principal=principal.name, operation="erase-subject",
                       subject=store._audit_name(subject), outcome="ok",
                       detail=f"{len(keys)} keys, crypto={crypto_erased}, "
                              f"compacted={compacted}")
    return ErasureReceipt(
        subject=subject, requested_at=requested_at,
        completed_at=completed_at, keys_erased=keys,
        crypto_erased=crypto_erased, log_compacted=compacted,
        residual_in_aof=residual, cold_segments_voided=cold_voided)


def portability_rows(store: GDPRStore, subject: str, fmt: str = "json",
                     principal: Optional[Principal] = None) -> List[dict]:
    """Collect (and audit) one store's Art. 20 export rows.

    Shared by single-store portability and the cluster layer's
    cross-shard export, which merges rows from every shard.
    """
    if principal is None:
        principal = Principal.subject(subject)
    store.require_subject(subject)
    rows = []
    for key in store.keys_of_subject(subject):
        record = store.get(key, principal=principal)
        rows.append({
            "key": key,
            "value": record.value.decode("utf-8", "replace"),
            "purposes": sorted(record.metadata.purposes),
            "origin": record.metadata.origin,
        })
    store.audit.append(principal=principal.name, operation="export",
                       subject=store._audit_name(subject), outcome="ok",
                       detail=f"{len(rows)} records as {fmt}")
    return rows


def render_portability(subject: str, rows: List[dict],
                       fmt: str = "json") -> bytes:
    """Serialize export rows into the commonly used format."""
    if fmt == "json":
        return json.dumps({"subject": subject, "records": rows},
                          sort_keys=True, indent=2).encode("utf-8")
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=["key", "value", "purposes", "origin"])
        writer.writeheader()
        for row in rows:
            writer.writerow({**row, "purposes": ";".join(row["purposes"])})
        return buffer.getvalue().encode("utf-8")
    raise ValueError(f"unsupported export format {fmt!r}")


def right_to_portability(store: GDPRStore, subject: str,
                         fmt: str = "json",
                         principal: Optional[Principal] = None) -> bytes:
    """Art. 20: export all the subject's data in a commonly used format."""
    rows = portability_rows(store, subject, fmt=fmt, principal=principal)
    return render_portability(subject, rows, fmt)


def right_to_object(store: GDPRStore, subject: str, purpose: str,
                    principal: Optional[Principal] = None) -> int:
    """Art. 21: blacklist ``purpose`` on every record of ``subject``.

    Returns the number of records updated.  Subsequent
    ``process_for_purpose`` calls skip them; direct reads for that purpose
    raise :class:`~repro.common.errors.PurposeViolationError`.
    """
    if principal is None:
        principal = Principal.subject(subject)
    store.require_subject(subject)
    updated = 0
    for key in store.keys_of_subject(subject):
        record = store.get(key, principal=principal)
        new_meta = record.metadata.with_objection(purpose)
        store.update_metadata(key, new_meta, principal=CONTROLLER)
        updated += 1
    store.audit.append(principal=principal.name, operation="object",
                       subject=store._audit_name(subject), purpose=purpose,
                       outcome="ok", detail=f"{updated} records")
    return updated


def transfer_subject(source: GDPRStore, target: GDPRStore, subject: str,
                     principal: Optional[Principal] = None) -> int:
    """Art. 20's second half: transmit directly to another controller.

    Re-stores each record in ``target`` (which applies its own residency
    and purpose checks) and marks the new controller as a recipient in the
    source's metadata.
    """
    if principal is None:
        principal = Principal.subject(subject)
    source.require_subject(subject)
    moved = 0
    for key in source.keys_of_subject(subject):
        record = source.get(key, principal=principal)
        target.put(key, record.value, record.metadata,
                   principal=CONTROLLER)
        source.update_metadata(
            key, record.metadata.with_shared(target.config.node_id),
            principal=CONTROLLER)
        moved += 1
    source.audit.append(principal=principal.name, operation="transfer",
                        subject=source._audit_name(subject), outcome="ok",
                        detail=f"{moved} records -> "
                               f"{target.config.node_id}")
    return moved
