"""Fine-grained, dynamic access control (GDPR Art. 25 & 32).

The paper notes Redis "offers no native support for access control"; GDPR
wants access limited to permitted entities, for established purposes, and
for predefined durations.  :class:`AccessController` implements:

* **default deny** -- nothing is permitted without an explicit grant;
* **principals and roles** -- grants attach to either;
* **purpose-scoped grants** -- a processor may be allowed to READ only for
  ``purpose="analytics"``;
* **time-boxed grants** -- every grant may carry an expiry instant, giving
  the "predefined duration of time" requirement;
* **subject self-access** -- a data subject always reaches their own
  records (Art. 15 would be unimplementable otherwise).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..common.errors import AccessDeniedError
from .metadata import GDPRMetadata


class Operation(enum.Enum):
    READ = "read"
    WRITE = "write"
    DELETE = "delete"
    EXPORT = "export"
    ADMIN = "admin"


@dataclass(frozen=True)
class Principal:
    """An authenticated actor: a person, service, or the controller."""

    name: str
    roles: FrozenSet[str] = frozenset()
    is_controller: bool = False

    @classmethod
    def controller(cls, name: str = "controller") -> "Principal":
        return cls(name=name, roles=frozenset({"controller"}),
                   is_controller=True)

    @classmethod
    def subject(cls, name: str) -> "Principal":
        """A data subject acting on their own behalf."""
        return cls(name=name, roles=frozenset({"subject"}))


@dataclass(frozen=True)
class Grant:
    """Permission for one operation, optionally purpose- and time-scoped."""

    grantee: str                      # principal name or "role:<name>"
    operation: Operation
    purpose: Optional[str] = None     # None = any purpose
    expires_at: Optional[float] = None

    def matches(self, principal: Principal, operation: Operation,
                purpose: Optional[str], now: float) -> bool:
        if self.operation is not operation:
            return False
        if self.expires_at is not None and now > self.expires_at:
            return False
        if self.purpose is not None and self.purpose != purpose:
            return False
        if self.grantee.startswith("role:"):
            return self.grantee[5:] in principal.roles
        return self.grantee == principal.name


@dataclass
class AccessDecision:
    allowed: bool
    reason: str


class AccessController:
    """Holds grants and renders allow/deny decisions."""

    def __init__(self) -> None:
        self._grants: List[Grant] = []
        self.decisions = 0
        self.denials = 0

    # -- administration ---------------------------------------------------------

    def grant(self, grantee: str, operation: Operation,
              purpose: Optional[str] = None,
              expires_at: Optional[float] = None) -> Grant:
        entry = Grant(grantee=grantee, operation=operation,
                      purpose=purpose, expires_at=expires_at)
        self._grants.append(entry)
        return entry

    def grant_role(self, role: str, operation: Operation,
                   purpose: Optional[str] = None,
                   expires_at: Optional[float] = None) -> Grant:
        return self.grant(f"role:{role}", operation, purpose, expires_at)

    def revoke(self, grant: Grant) -> bool:
        try:
            self._grants.remove(grant)
            return True
        except ValueError:
            return False

    def revoke_all_for(self, grantee: str) -> int:
        before = len(self._grants)
        self._grants = [g for g in self._grants if g.grantee != grantee]
        return before - len(self._grants)

    def prune_expired(self, now: float) -> int:
        before = len(self._grants)
        self._grants = [g for g in self._grants
                        if g.expires_at is None or g.expires_at >= now]
        return before - len(self._grants)

    def grants_for(self, grantee: str) -> List[Grant]:
        return [g for g in self._grants if g.grantee == grantee]

    @property
    def grant_count(self) -> int:
        return len(self._grants)

    # -- decisions -----------------------------------------------------------------

    def decide(self, principal: Principal, operation: Operation,
               metadata: Optional[GDPRMetadata], purpose: Optional[str],
               now: float) -> AccessDecision:
        """Default-deny decision for an operation against one record."""
        self.decisions += 1
        if principal.is_controller:
            return AccessDecision(True, "controller")
        if (metadata is not None and metadata.owner == principal.name
                and operation in (Operation.READ, Operation.DELETE,
                                  Operation.EXPORT)):
            return AccessDecision(True, "subject self-access")
        for grant in self._grants:
            if grant.matches(principal, operation, purpose, now):
                return AccessDecision(True, f"grant to {grant.grantee}")
        self.denials += 1
        return AccessDecision(
            False, f"no grant allows {principal.name} to "
                   f"{operation.value}"
                   + (f" for purpose {purpose!r}" if purpose else ""))

    def check(self, principal: Principal, operation: Operation,
              metadata: Optional[GDPRMetadata], purpose: Optional[str],
              now: float) -> None:
        """Raise :class:`AccessDeniedError` unless permitted."""
        decision = self.decide(principal, operation, metadata, purpose, now)
        if not decision.allowed:
            raise AccessDeniedError(decision.reason)
