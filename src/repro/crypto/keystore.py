"""Key hierarchy with per-subject data keys and crypto-erasure.

The GDPR layer encrypts each data subject's values under a **per-subject
data key**, wrapped by a master key.  Destroying a subject's data key makes
every ciphertext encrypted under it unrecoverable -- *crypto-erasure* --
which is the standard systems answer to Art. 17's requirement that erasure
reach replicas and backups that are expensive to rewrite (the paper's AOF
persistence concern in section 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..common.errors import CryptoError, KeyErasedError, KeyNotFoundError
from .cipher import KEY_SIZE, AuthenticatedCipher, random_bytes


class KeyStore:
    """Manages wrapped per-subject keys under one master key.

    Wrapped key material (what :meth:`export_wrapped` returns) is safe to
    persist anywhere; only the master key must live in protected storage.
    """

    def __init__(self, master_key: Optional[bytes] = None) -> None:
        if master_key is None:
            master_key = random_bytes(KEY_SIZE)
        if len(master_key) != KEY_SIZE:
            raise CryptoError(
                f"master key must be {KEY_SIZE} bytes, got {len(master_key)}")
        self._master = AuthenticatedCipher(master_key)
        self._wrapped: Dict[str, bytes] = {}
        self._erased: set = set()
        # Cipher contexts are stateless (fresh nonce per seal), so one
        # instance per key id is safe to reuse -- unwrapping the master
        # key and re-deriving the enc/mac subkeys on every data-path op
        # is pure hot-path waste.  Invalidated on erasure and import.
        self._cipher_cache: Dict[str, AuthenticatedCipher] = {}

    # -- key lifecycle -------------------------------------------------------

    def create_key(self, key_id: str) -> bytes:
        """Create (or return the existing) data key for ``key_id``."""
        if key_id in self._erased:
            raise KeyErasedError(
                f"key {key_id!r} was erased and cannot be recreated "
                "under the same id")
        if key_id in self._wrapped:
            return self.get_key(key_id)
        data_key = random_bytes(KEY_SIZE)
        self._wrapped[key_id] = self._master.seal(
            data_key, aad=key_id.encode("utf-8"))
        return data_key

    def get_key(self, key_id: str) -> bytes:
        """Unwrap and return the data key for ``key_id``."""
        if key_id in self._erased:
            raise KeyErasedError(f"key {key_id!r} was crypto-erased")
        wrapped = self._wrapped.get(key_id)
        if wrapped is None:
            raise KeyNotFoundError(f"no key with id {key_id!r}")
        return self._master.open(wrapped, aad=key_id.encode("utf-8"))

    def cipher_for(self, key_id: str,
                   create: bool = True) -> AuthenticatedCipher:
        """Authenticated cipher bound to ``key_id``'s data key (cached)."""
        if key_id in self._erased:
            raise KeyErasedError(f"key {key_id!r} was crypto-erased")
        cipher = self._cipher_cache.get(key_id)
        if cipher is not None:
            return cipher
        if create and key_id not in self._wrapped:
            self.create_key(key_id)
        cipher = AuthenticatedCipher(self.get_key(key_id))
        self._cipher_cache[key_id] = cipher
        return cipher

    def erase_key(self, key_id: str) -> bool:
        """Crypto-erase: destroy the wrapped key, tombstone the id.

        Returns True if a key was destroyed.  After erasure every
        ciphertext under this key is permanently unreadable, including
        copies in logs, snapshots, and backups.
        """
        existed = self._wrapped.pop(key_id, None) is not None
        self._cipher_cache.pop(key_id, None)
        self._erased.add(key_id)
        return existed

    # -- introspection / portability ------------------------------------------

    def __contains__(self, key_id: str) -> bool:
        return key_id in self._wrapped

    def key_ids(self) -> Iterable[str]:
        return sorted(self._wrapped)

    def erased_ids(self) -> Iterable[str]:
        return sorted(self._erased)

    def export_wrapped(self) -> Dict[str, bytes]:
        """Wrapped (encrypted) key blobs -- safe to persist."""
        return dict(self._wrapped)

    def import_wrapped(self, blobs: Dict[str, bytes]) -> None:
        """Restore wrapped keys (e.g., after restart).

        Erased ids stay erased: a restore must not resurrect destroyed keys,
        otherwise backups would defeat crypto-erasure.
        """
        for key_id, blob in blobs.items():
            if key_id in self._erased:
                continue
            # Validate before accepting: unwrapping raises on tampering.
            self._master.open(blob, aad=key_id.encode("utf-8"))
            self._wrapped[key_id] = blob
            self._cipher_cache.pop(key_id, None)
