"""Pure-Python authenticated encryption used for at-rest and in-transit data.

GDPR Art. 32 mandates encryption of personal data; the paper bolts LUKS and
TLS onto Redis.  Nothing cryptographic is importable in this offline
environment beyond :mod:`hashlib`/:mod:`hmac`, so we build a standard
construction from those primitives:

* a **CTR-mode stream cipher** whose keystream blocks are
  ``SHA-256(key || nonce || counter)`` -- a PRF in counter mode; and
* **encrypt-then-MAC** with HMAC-SHA256 over ``nonce || aad || ciphertext``.

This is the textbook generic composition (IND-CPA stream cipher + SUF-CMA
MAC => IND-CCA AE).  It is NOT a vetted primitive suite and exists to
reproduce the *systems cost* of encryption: every byte through the layer
pays a per-byte CPU price, exactly the overhead the paper measures.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import random
import struct

from ..common.errors import CryptoError, IntegrityError

BLOCK_SIZE = 32          # SHA-256 digest size drives the keystream block.
NONCE_SIZE = 16
TAG_SIZE = 32
KEY_SIZE = 32


# Overridable entropy hook.  os.urandom nonces make ciphertext -- and
# therefore compressed-segment sizes and simulated device timings --
# differ between otherwise identical runs, which breaks the repo's
# same-seed => byte-identical-output guarantee for benchmarks that
# report sizes.  Deterministic runs install a seeded source here.
_entropy_source = None


def random_bytes(n: int) -> bytes:
    """Source of nonces and keys (os.urandom; not clock-dependent)."""
    if _entropy_source is not None:
        return _entropy_source(n)
    return os.urandom(n)


class seeded_entropy:
    """Context manager: route :func:`random_bytes` through a seeded PRNG.

    For deterministic *simulation* runs only -- predictable nonces and
    keys void every security property of the ciphers built on them.
    """

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self._previous = None

    def __enter__(self) -> "seeded_entropy":
        global _entropy_source
        self._previous = _entropy_source
        _entropy_source = self._rng.randbytes
        return self

    def __exit__(self, *exc_info) -> None:
        global _entropy_source
        _entropy_source = self._previous


def derive_key(passphrase: bytes, salt: bytes,
               iterations: int = 10_000) -> bytes:
    """PBKDF2-HMAC-SHA256 key derivation (LUKS-style keyslot KDF)."""
    if not passphrase:
        raise CryptoError("empty passphrase")
    return hashlib.pbkdf2_hmac("sha256", passphrase, salt, iterations,
                               dklen=KEY_SIZE)


class StreamCipher:
    """SHA-256/CTR keystream cipher.  Encryption == decryption (XOR)."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise CryptoError(f"key must be {KEY_SIZE} bytes, got {len(key)}")
        self._key = key

    def keystream(self, nonce: bytes, length: int,
                  start_block: int = 0) -> bytes:
        """Generate ``length`` keystream bytes for ``nonce``."""
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(
                f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        blocks = []
        needed = length
        counter = start_block
        prefix = self._key + nonce
        while needed > 0:
            block = hashlib.sha256(
                prefix + struct.pack(">Q", counter)).digest()
            blocks.append(block)
            needed -= BLOCK_SIZE
            counter += 1
        return b"".join(blocks)[:length]

    def transform(self, data: bytes, nonce: bytes) -> bytes:
        """XOR ``data`` with the keystream for ``nonce``."""
        stream = self.keystream(nonce, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))

    encrypt = transform
    decrypt = transform


class AuthenticatedCipher:
    """Encrypt-then-MAC envelope: ``nonce || ciphertext || tag``.

    Separate encryption and MAC keys are derived from the master key so a
    single 32-byte key configures the whole envelope.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise CryptoError(f"key must be {KEY_SIZE} bytes, got {len(key)}")
        self._enc_key = hashlib.sha256(b"enc|" + key).digest()
        self._mac_key = hashlib.sha256(b"mac|" + key).digest()
        self._cipher = StreamCipher(self._enc_key)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(struct.pack(">I", len(aad)))
        mac.update(aad)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()

    def seal(self, plaintext: bytes, aad: bytes = b"",
             nonce: bytes = None) -> bytes:
        """Encrypt and authenticate ``plaintext`` (binding ``aad``)."""
        if nonce is None:
            nonce = random_bytes(NONCE_SIZE)
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(
                f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
        ciphertext = self._cipher.transform(plaintext, nonce)
        return nonce + ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, token: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt a sealed token; raises IntegrityError."""
        if len(token) < NONCE_SIZE + TAG_SIZE:
            raise IntegrityError("token too short to be authentic")
        nonce = token[:NONCE_SIZE]
        ciphertext = token[NONCE_SIZE:-TAG_SIZE]
        tag = token[-TAG_SIZE:]
        expected = self._tag(nonce, aad, ciphertext)
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("authentication tag mismatch")
        return self._cipher.transform(ciphertext, nonce)

    @staticmethod
    def overhead() -> int:
        """Bytes added per sealed message."""
        return NONCE_SIZE + TAG_SIZE


class SectorCipher:
    """Length-preserving sector encryption for block devices (LUKS-like).

    Each sector is encrypted under a nonce derived deterministically from
    the sector number (an ESSIV-style tweak), so random-access reads need no
    stored per-sector metadata and writes stay in place.  Length-preserving
    means no per-sector integrity tag -- the same trade-off dm-crypt makes;
    whole-device integrity belongs to a higher layer.
    """

    def __init__(self, key: bytes) -> None:
        self._cipher = StreamCipher(hashlib.sha256(b"sector|" + key).digest())
        self._tweak_key = hashlib.sha256(b"tweak|" + key).digest()

    def _sector_nonce(self, sector: int) -> bytes:
        digest = hmac.new(self._tweak_key, struct.pack(">Q", sector),
                          hashlib.sha256).digest()
        return digest[:NONCE_SIZE]

    def encrypt_sector(self, sector: int, data: bytes) -> bytes:
        return self._cipher.transform(data, self._sector_nonce(sector))

    decrypt_sector = encrypt_sector  # XOR cipher: same transform.
