"""Cryptographic building blocks: AE cipher, key hierarchy, pseudonyms."""

from .cipher import (
    KEY_SIZE,
    NONCE_SIZE,
    TAG_SIZE,
    AuthenticatedCipher,
    SectorCipher,
    StreamCipher,
    derive_key,
    random_bytes,
    seeded_entropy,
)
from .keystore import KeyStore
from .pseudonymize import Pseudonymizer

__all__ = [
    "KEY_SIZE",
    "NONCE_SIZE",
    "TAG_SIZE",
    "AuthenticatedCipher",
    "SectorCipher",
    "StreamCipher",
    "derive_key",
    "random_bytes",
    "seeded_entropy",
    "KeyStore",
    "Pseudonymizer",
]
