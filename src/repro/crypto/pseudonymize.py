"""Pseudonymization (GDPR Art. 32, Recital 28).

GDPR names pseudonymization as a risk-reduction measure: replace direct
identifiers with stable pseudonyms, and keep the re-identification table
separate from the data.  :class:`Pseudonymizer` produces deterministic
HMAC-based pseudonyms; the reverse mapping lives only inside the object (the
"separate storage" in a real deployment) and is itself erasable per subject.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Optional

from ..common.errors import CryptoError
from .cipher import KEY_SIZE, random_bytes


class Pseudonymizer:
    """Deterministic, keyed pseudonyms with an erasable reverse map."""

    def __init__(self, key: Optional[bytes] = None, prefix: str = "sub-",
                 digest_chars: int = 16) -> None:
        if key is None:
            key = random_bytes(KEY_SIZE)
        if len(key) < 16:
            raise CryptoError("pseudonymization key too short")
        if digest_chars < 8:
            raise CryptoError("pseudonym too short to avoid collisions")
        self._key = key
        self._prefix = prefix
        self._chars = digest_chars
        self._reverse: Dict[str, str] = {}

    def pseudonym(self, identifier: str) -> str:
        """Stable pseudonym for ``identifier``; records the reverse link."""
        digest = hmac.new(self._key, identifier.encode("utf-8"),
                          hashlib.sha256).hexdigest()[:self._chars]
        alias = self._prefix + digest
        self._reverse[alias] = identifier
        return alias

    def reidentify(self, alias: str) -> Optional[str]:
        """Reverse lookup; None if unknown or unlinked."""
        return self._reverse.get(alias)

    def unlink(self, identifier: str) -> bool:
        """Destroy the reverse link for one subject (erasure support).

        The pseudonym remains computable only by parties holding the key;
        without the reverse table the stored alias no longer identifies the
        subject through this system.
        """
        alias = self.pseudonym(identifier)
        # pseudonym() re-adds the link; remove it and report whether a link
        # existed before this call.
        return self._reverse.pop(alias, None) is not None

    def linked_count(self) -> int:
        return len(self._reverse)
